//! *word count* on compressed data: bottom-up propagation of local word
//! tables through the DAG, exactly the information flow of Figure 2 in the
//! paper (children transmit accumulated word frequencies to their parents,
//! weighted by how often the child occurs in the parent).

use crate::results::WordCountResult;
use crate::timing::{PhaseTimings, Timer, WorkStats};
use sequitur::fxhash::FxHashMap;
use sequitur::{Dag, TadocArchive, WordId};

/// Runs word count sequentially on compressed data.
pub fn run(archive: &TadocArchive, dag: &Dag) -> (WordCountResult, PhaseTimings) {
    // Phase 1: initialization — allocate the per-rule frequency tables.
    let init_timer = Timer::start();
    let mut init_work = WorkStats::default();
    let n = dag.num_rules;
    let mut tables: Vec<FxHashMap<WordId, u64>> = Vec::with_capacity(n);
    for r in 0..n {
        let capacity = dag.local_words[r].len();
        tables.push(FxHashMap::with_capacity_and_hasher(
            capacity,
            Default::default(),
        ));
        init_work.elements_scanned += dag.rule_lengths[r] as u64;
        init_work.bytes_moved += capacity as u64 * 12;
    }
    let init = init_timer.elapsed();

    // Phase 2: DAG traversal — merge child tables into parents, children first.
    let trav_timer = Timer::start();
    let mut trav_work = WorkStats::default();
    for &r in &dag.topo_children_first {
        let ri = r as usize;
        let mut table = std::mem::take(&mut tables[ri]);
        for &(w, c) in &dag.local_words[ri] {
            *table.entry(w).or_insert(0) += c as u64;
            trav_work.table_ops += 1;
        }
        for &(child, freq) in &dag.children[ri] {
            // Transmit the child's accumulated frequencies to this parent.
            for (&w, &cnt) in &tables[child as usize] {
                *table.entry(w).or_insert(0) += cnt * freq as u64;
                trav_work.table_ops += 1;
                trav_work.bytes_moved += 12;
            }
        }
        tables[ri] = table;
        trav_work.elements_scanned += dag.rule_lengths[ri] as u64;
    }
    let counts = std::mem::take(&mut tables[0]);
    let traversal = trav_timer.elapsed();

    debug_assert_eq!(
        counts.values().sum::<u64>(),
        archive.files.iter().map(|f| f.token_count).sum::<u64>(),
        "word count total must equal the corpus token count"
    );

    (
        WordCountResult::from_unsorted_pairs(counts.into_iter().collect()),
        PhaseTimings {
            init,
            traversal,
            init_work,
            traversal_work: trav_work,
            ..Default::default()
        },
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::oracle;
    use sequitur::compress::{compress_corpus, CompressOptions};

    #[test]
    fn matches_paper_figure_2() {
        // Build the exact corpus of Figure 1 and expect the final counts of
        // Figure 2: <w1,6>, <w2,5>, <w3,2>, <w4,2>.
        let corpus = vec![
            (
                "fileA".to_string(),
                "w1 w2 w3 w1 w2 w4 w1 w2 w3 w1 w2 w4".to_string(),
            ),
            ("fileB".to_string(), "w1 w2 w1".to_string()),
        ];
        let archive = compress_corpus(&corpus, CompressOptions::default());
        let dag = Dag::from_grammar(&archive.grammar);
        let (result, _) = run(&archive, &dag);
        let w1 = archive.dictionary.get("w1").unwrap();
        let w2 = archive.dictionary.get("w2").unwrap();
        let w3 = archive.dictionary.get("w3").unwrap();
        let w4 = archive.dictionary.get("w4").unwrap();
        assert_eq!(result.count(w1), 6);
        assert_eq!(result.count(w2), 5);
        assert_eq!(result.count(w3), 2);
        assert_eq!(result.count(w4), 2);
    }

    #[test]
    fn matches_oracle_on_redundant_corpus() {
        let body = "lorem ipsum dolor sit amet consectetur adipiscing elit ".repeat(20);
        let corpus: Vec<(String, String)> = (0..6)
            .map(|i| (format!("f{i}"), format!("{body} unique{i}")))
            .collect();
        let archive = compress_corpus(&corpus, CompressOptions::default());
        let dag = Dag::from_grammar(&archive.grammar);
        let (result, timings) = run(&archive, &dag);
        let expected = oracle::word_count(&archive.grammar.expand_files());
        assert_eq!(result, expected);
        assert!(timings.traversal_work.table_ops > 0);
        assert!(timings.init_work.elements_scanned > 0);
    }

    #[test]
    fn traversal_work_is_sublinear_in_corpus_size_for_redundant_data() {
        // The same paragraph repeated many times: TADOC's table operations
        // must not grow linearly with repetitions (this is the computation
        // reuse the paper exploits).
        let paragraph = "alpha beta gamma delta epsilon zeta ";
        let small: Vec<(String, String)> =
            vec![("s".to_string(), paragraph.repeat(50))];
        let large: Vec<(String, String)> =
            vec![("l".to_string(), paragraph.repeat(800))];
        let run_ops = |corpus: &[(String, String)]| {
            let archive = compress_corpus(corpus, CompressOptions::default());
            let dag = Dag::from_grammar(&archive.grammar);
            let (_, t) = run(&archive, &dag);
            t.traversal_work.table_ops
        };
        let ops_small = run_ops(&small);
        let ops_large = run_ops(&large);
        assert!(
            (ops_large as f64) < (ops_small as f64) * 8.0,
            "16x more input should need far less than 16x more table work \
             (small={ops_small}, large={ops_large})"
        );
    }
}
