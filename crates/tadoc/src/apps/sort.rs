//! *sort*: words ranked by total frequency.  Reuses the word-count traversal
//! and adds a ranking step to the traversal phase, as in CompressDirect.

use super::word_count;
use crate::results::SortResult;
use crate::timing::{PhaseTimings, Timer};
use sequitur::{Dag, TadocArchive};

/// Runs sort sequentially on compressed data.
pub fn run(archive: &TadocArchive, dag: &Dag) -> (SortResult, PhaseTimings) {
    let (wc, mut timings) = word_count::run(archive, dag);
    let rank_timer = Timer::start();
    let result = SortResult::from_word_count(&wc);
    timings.traversal += rank_timer.elapsed();
    timings.traversal_work.table_ops += result.ranked.len() as u64;
    timings.traversal_work.bytes_moved += result.ranked.len() as u64 * 12;
    (result, timings)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::oracle;
    use sequitur::compress::{compress_corpus, CompressOptions};

    #[test]
    fn ranking_matches_oracle() {
        let corpus = vec![
            ("a".to_string(), "x x x y y z common common common common".to_string()),
            ("b".to_string(), "y z z common common".to_string()),
        ];
        let archive = compress_corpus(&corpus, CompressOptions::default());
        let dag = Dag::from_grammar(&archive.grammar);
        let (result, _) = run(&archive, &dag);
        let expected = oracle::sort(&archive.grammar.expand_files());
        assert_eq!(result, expected);
        // "common" (6 occurrences) must rank first.
        let common = archive.dictionary.get("common").unwrap();
        assert_eq!(result.ranked[0].0, common);
        assert_eq!(result.ranked[0].1, 6);
    }

    #[test]
    fn ranking_is_strictly_non_increasing() {
        let corpus = vec![("a".to_string(), "p q r p q p s t u v w".to_string())];
        let archive = compress_corpus(&corpus, CompressOptions::default());
        let dag = Dag::from_grammar(&archive.grammar);
        let (result, _) = run(&archive, &dag);
        for pair in result.ranked.windows(2) {
            assert!(pair[0].1 >= pair[1].1);
        }
    }
}
