//! *inverted index* on compressed data: top-down propagation of file
//! information (per-file rule weights), then each rule contributes its local
//! words to the posting lists of every file it occurs in.

use crate::results::{FileId, InvertedIndexResult};
use crate::timing::{PhaseTimings, Timer, WorkStats};
use crate::weights::{file_segments, file_weights};
use sequitur::fxhash::{FxHashMap, FxHashSet};
use sequitur::{Dag, Symbol, TadocArchive, WordId};

/// Runs inverted index sequentially on compressed data.
pub fn run(archive: &TadocArchive, dag: &Dag) -> (InvertedIndexResult, PhaseTimings) {
    let grammar = &archive.grammar;

    // Phase 1: initialization — file segments of the root and per-rule file
    // weights (the "file information" transmitted from the root downward).
    let init_timer = Timer::start();
    let mut init_work = WorkStats::default();
    let segments = file_segments(grammar);
    let fw = file_weights(grammar, dag, &mut init_work);
    let init = init_timer.elapsed();

    // Phase 2: traversal — gather word → file-set postings.
    let trav_timer = Timer::start();
    let mut trav_work = WorkStats::default();
    let mut sets: FxHashMap<WordId, FxHashSet<FileId>> = FxHashMap::default();

    // Words that appear directly in the root belong to the file of their
    // segment.
    let root = grammar.root();
    for (fid, &(start, end)) in segments.iter().enumerate() {
        for sym in &root[start..end] {
            trav_work.elements_scanned += 1;
            if let Symbol::Word(w) = *sym {
                sets.entry(w).or_default().insert(fid as FileId);
                trav_work.table_ops += 1;
            }
        }
    }

    // Every other rule contributes its local words to every file it occurs in.
    for (r, rule_fw) in fw.iter().enumerate().skip(1) {
        if rule_fw.is_empty() {
            continue;
        }
        for &(w, _) in &dag.local_words[r] {
            let entry = sets.entry(w).or_default();
            for &f in rule_fw.keys() {
                entry.insert(f);
                trav_work.table_ops += 1;
            }
        }
        trav_work.elements_scanned += dag.rule_lengths[r] as u64;
    }

    let rows: Vec<(WordId, Vec<FileId>)> = sets
        .into_iter()
        .map(|(w, set)| {
            let mut files: Vec<FileId> = set.into_iter().collect();
            files.sort_unstable();
            trav_work.bytes_moved += files.len() as u64 * 4;
            (w, files)
        })
        .collect();
    let traversal = trav_timer.elapsed();

    (
        InvertedIndexResult::from_unsorted_rows(rows),
        PhaseTimings {
            init,
            traversal,
            init_work,
            traversal_work: trav_work,
            ..Default::default()
        },
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::oracle;
    use sequitur::compress::{compress_corpus, CompressOptions};

    fn build(corpus: &[(String, String)]) -> (TadocArchive, Dag) {
        let archive = compress_corpus(corpus, CompressOptions::default());
        let dag = Dag::from_grammar(&archive.grammar);
        (archive, dag)
    }

    #[test]
    fn matches_oracle_on_shared_content() {
        let corpus = vec![
            ("a".to_string(), "shared phrase one two three alpha".to_string()),
            ("b".to_string(), "shared phrase one two three beta".to_string()),
            ("c".to_string(), "completely different words here".to_string()),
            ("d".to_string(), "shared phrase one two three alpha".to_string()),
        ];
        let (archive, dag) = build(&corpus);
        let (result, _) = run(&archive, &dag);
        let expected = oracle::inverted_index(&archive.grammar.expand_files());
        assert_eq!(result, expected);
    }

    #[test]
    fn word_unique_to_one_file_has_single_posting() {
        let corpus = vec![
            ("a".to_string(), "common text common text special".to_string()),
            ("b".to_string(), "common text common text".to_string()),
        ];
        let (archive, dag) = build(&corpus);
        let (result, _) = run(&archive, &dag);
        let special = archive.dictionary.get("special").unwrap();
        assert_eq!(result.files_for(special), &[0]);
        let common = archive.dictionary.get("common").unwrap();
        assert_eq!(result.files_for(common), &[0, 1]);
    }

    #[test]
    fn posting_lists_are_sorted_and_deduplicated() {
        let corpus: Vec<(String, String)> = (0..10)
            .map(|i| (format!("f{i}"), "same same same content".to_string()))
            .collect();
        let (archive, dag) = build(&corpus);
        let (result, _) = run(&archive, &dag);
        for (_, files) in result.iter() {
            let mut sorted = files.to_vec();
            sorted.sort_unstable();
            sorted.dedup();
            assert_eq!(sorted, files);
            assert_eq!(files.len(), 10);
        }
    }
}
