//! *ranked inverted index* on compressed data (CPU baseline): for every
//! `l`-word sequence, the list of files containing it ranked by in-file
//! frequency.  Like sequence count, the CPU baseline follows TADOC's
//! recursive traversal, so its work is proportional to the uncompressed size.

use crate::results::{FileId, RankedInvertedIndexResult, Sequence};
use crate::timing::{PhaseTimings, Timer, WorkStats};
use crate::weights::stream_file_words;
use sequitur::fxhash::FxHashMap;
use sequitur::{Dag, TadocArchive, WordId};

/// Runs ranked inverted index sequentially on compressed data.
pub fn run(
    archive: &TadocArchive,
    dag: &Dag,
    l: usize,
) -> (RankedInvertedIndexResult, PhaseTimings) {
    assert!(l >= 1, "sequence length must be at least 1");
    let grammar = &archive.grammar;

    // Phase 1: initialization.
    let init_timer = Timer::start();
    let mut init_work = WorkStats::default();
    init_work.elements_scanned += dag.num_rules as u64;
    let num_files = grammar.num_files();
    let mut per_seq: FxHashMap<Sequence, FxHashMap<FileId, u64>> = FxHashMap::default();
    let init = init_timer.elapsed();

    // Phase 2: traversal — per-file sliding-window counting, then ranking.
    let trav_timer = Timer::start();
    let mut trav_work = WorkStats::default();
    let mut window: Vec<WordId> = Vec::with_capacity(l);
    for file in 0..num_files as u32 {
        window.clear();
        stream_file_words(grammar, file, &mut trav_work, |w| {
            if window.len() == l {
                window.rotate_left(1);
                window.pop();
            }
            window.push(w);
            if window.len() == l {
                *per_seq
                    .entry(window.clone())
                    .or_default()
                    .entry(file)
                    .or_insert(0) += 1;
            }
        });
    }
    trav_work.table_ops += per_seq.len() as u64;

    let rows: Vec<(Sequence, Vec<(FileId, u64)>)> = per_seq
        .into_iter()
        .map(|(seq, files)| {
            let mut ranked: Vec<(FileId, u64)> = files.into_iter().collect();
            ranked.sort_unstable_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));
            trav_work.bytes_moved += ranked.len() as u64 * 12;
            (seq, ranked)
        })
        .collect();
    let traversal = trav_timer.elapsed();

    (
        RankedInvertedIndexResult::from_unsorted_rows(l, rows),
        PhaseTimings {
            init,
            traversal,
            init_work,
            traversal_work: trav_work,
            ..Default::default()
        },
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::oracle;
    use sequitur::compress::{compress_corpus, CompressOptions};

    #[test]
    fn matches_oracle() {
        let corpus = vec![
            ("a".to_string(), "one two three one two three four".to_string()),
            ("b".to_string(), "one two three".to_string()),
            ("c".to_string(), "five six seven one two three one two three".to_string()),
        ];
        let archive = compress_corpus(&corpus, CompressOptions::default());
        let dag = Dag::from_grammar(&archive.grammar);
        let (result, _) = run(&archive, &dag, 3);
        let expected = oracle::ranked_inverted_index(&archive.grammar.expand_files(), 3);
        assert_eq!(result, expected);
    }

    #[test]
    fn ranking_puts_most_frequent_file_first() {
        let corpus = vec![
            ("low".to_string(), "w1 w2 w3 filler filler".to_string()),
            ("high".to_string(), "w1 w2 w3 w1 w2 w3 w1 w2 w3".to_string()),
        ];
        let archive = compress_corpus(&corpus, CompressOptions::default());
        let dag = Dag::from_grammar(&archive.grammar);
        let (result, _) = run(&archive, &dag, 3);
        let seq = vec![
            archive.dictionary.get("w1").unwrap(),
            archive.dictionary.get("w2").unwrap(),
            archive.dictionary.get("w3").unwrap(),
        ];
        let ranked = result.files_for(&seq);
        assert_eq!(ranked[0].0, 1, "file 'high' must rank first");
        assert_eq!(ranked[0].1, 3);
        assert_eq!(ranked[1], (0, 1));
    }

    #[test]
    fn bigram_index_on_three_files() {
        let corpus = vec![
            ("a".to_string(), "a b a b".to_string()),
            ("b".to_string(), "a b".to_string()),
            ("c".to_string(), "c d".to_string()),
        ];
        let archive = compress_corpus(&corpus, CompressOptions::default());
        let dag = Dag::from_grammar(&archive.grammar);
        let (result, _) = run(&archive, &dag, 2);
        let expected = oracle::ranked_inverted_index(&archive.grammar.expand_files(), 2);
        assert_eq!(result, expected);
        assert_eq!(result.distinct_sequences(), 3); // (a,b), (b,a), (c,d)
    }
}
