//! # tadoc
//!
//! CPU baseline: **T**ext **A**nalytics **D**irectly **O**n **C**ompression.
//!
//! This crate re-implements the state-of-the-art TADOC system the paper
//! compares against (Zhang et al., PVLDB 2018 / VLDB Journal 2020):
//!
//! * the six CompressDirect analytics tasks (*word count, sort, inverted
//!   index, term vector, sequence count, ranked inverted index*) executed
//!   directly on the compressed grammar, sequentially;
//! * the coarse-grained parallel variant that partitions files across CPU
//!   threads and merges partial results (the TADOC parallel design G-TADOC's
//!   fine-grained scheduling is contrasted with);
//! * the **fine-grained parallel engine** ([`fine_grained`]): the G-TADOC
//!   scheduling on real CPU threads — level-synchronized DAG traversal,
//!   arena-backed per-worker tables, sharded lock-free merges, and rule-local
//!   sequence counting (see the module docs for the paper mapping);
//! * a ground-truth *oracle* that computes every task on the decompressed
//!   token streams (used to validate both TADOC and G-TADOC);
//! * the CPU and 10-node-cluster analytic cost models used by the experiment
//!   harness to reproduce the paper's speedup figures.
//!
//! Every task records [`timing::PhaseTimings`] separating the
//! *initialization* phase (data-structure preparation) from the *DAG
//! traversal* phase, matching the phase breakdown of Figure 10.

pub mod apps;
pub mod cost;
pub mod fine_grained;
pub mod oracle;
pub mod parallel;
pub mod results;
pub mod timing;
pub mod weights;

pub use apps::{run_task, Task, TaskConfig};
pub use fine_grained::{
    run_task_fine_grained, run_task_with_mode, ConfigError, Engine, EngineBuilder, ExecutionMode,
    FineGrainedConfig, TaskSpec,
};
pub use results::{
    AnalyticsOutput, InvertedIndexResult, RankedInvertedIndexResult, SequenceCountResult,
    SortResult, TermVectorResult, WordCountResult,
};
pub use timing::{PhaseTimings, WorkStats};

/// Re-exported hash map type used by all result tables.
pub use sequitur::fxhash::FxHashMap;
