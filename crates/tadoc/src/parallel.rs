//! Coarse-grained parallel TADOC.
//!
//! The parallel TADOC design the paper contrasts G-TADOC with (its
//! reference \[4\]) splits the input into file partitions, lets each CPU
//! thread process
//! its partition independently, and merges the partial results at the end.
//! This module reproduces that design with `std::thread::scope`.  The paper's
//! point — that such coarse-grained parallelism cannot feed the thousands of
//! threads a GPU offers — is exactly why the fine-grained scheduling in
//! `gtadoc` exists.

use crate::apps::{Task, TaskConfig, TaskExecution};
use crate::results::*;
use crate::timing::{PhaseTimings, Timer, WorkStats};
use crate::weights::{file_segments, file_weights, stream_file_words};
use sequitur::fxhash::{FxHashMap, FxHashSet};
use sequitur::{Dag, Symbol, TadocArchive, WordId};

/// Configuration of the coarse-grained parallel runner.
#[derive(Debug, Clone, Copy)]
pub struct ParallelConfig {
    /// Number of worker threads (file partitions).
    pub num_threads: usize,
}

impl Default for ParallelConfig {
    fn default() -> Self {
        let threads = std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1);
        Self {
            num_threads: threads,
        }
    }
}

/// Partitions `num_files` file ids into at most `parts` contiguous chunks.
///
/// Never produces an empty partition: the number of chunks is capped at
/// `num_files`, and zero files yield zero partitions.
pub fn partition_files(num_files: usize, parts: usize) -> Vec<Vec<FileId>> {
    let n_parts = parts.max(1).min(num_files);
    let mut out: Vec<Vec<FileId>> = vec![Vec::new(); n_parts];
    for f in 0..num_files {
        out[f * n_parts / num_files].push(f as FileId);
    }
    out
}

/// Runs `task` with coarse-grained (file-partition) parallelism and merges the
/// partial results.
pub fn run_task_parallel(
    archive: &TadocArchive,
    dag: &Dag,
    task: Task,
    cfg: TaskConfig,
    pcfg: ParallelConfig,
) -> TaskExecution {
    let grammar = &archive.grammar;
    let num_files = grammar.num_files();

    // Phase 1: shared initialization (file weights are computed once and
    // shared read-only by all workers, mirroring the shared compressed input).
    let init_timer = Timer::start();
    let mut init_work = WorkStats::default();
    let fw = file_weights(grammar, dag, &mut init_work);
    let segments = file_segments(grammar);
    let partitions = partition_files(num_files, pcfg.num_threads);
    let init = init_timer.elapsed();

    // Phase 2: per-partition processing + merge.
    let trav_timer = Timer::start();
    let partials: Vec<(AnalyticsOutput, WorkStats)> = std::thread::scope(|scope| {
        let handles: Vec<_> = partitions
            .iter()
            .map(|files| {
                let fw = &fw;
                let segments = &segments;
                scope.spawn(move || {
                    run_on_file_subset(archive, dag, fw, segments, files, task, cfg)
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("worker thread panicked"))
            .collect()
    });

    let mut traversal_work = WorkStats::default();
    for (_, w) in &partials {
        traversal_work.merge(w);
    }
    let output = merge_outputs(
        task,
        cfg,
        num_files,
        partials.into_iter().map(|(o, _)| o).collect(),
    );
    let traversal = trav_timer.elapsed();

    TaskExecution {
        output,
        timings: PhaseTimings {
            init,
            traversal,
            init_work,
            traversal_work,
            ..Default::default()
        },
    }
}

/// Computes `task` restricted to the given files.
fn run_on_file_subset(
    archive: &TadocArchive,
    dag: &Dag,
    fw: &[FxHashMap<FileId, u64>],
    segments: &[(usize, usize)],
    files: &[FileId],
    task: Task,
    cfg: TaskConfig,
) -> (AnalyticsOutput, WorkStats) {
    let grammar = &archive.grammar;
    let mut work = WorkStats::default();
    let file_set: FxHashSet<FileId> = files.iter().copied().collect();

    match task {
        Task::WordCount | Task::Sort => {
            let mut counts: FxHashMap<WordId, u64> = FxHashMap::default();
            // Root words belonging to this partition's files.
            for &f in files {
                if let Some(&(start, end)) = segments.get(f as usize) {
                    for sym in &grammar.root()[start..end] {
                        work.elements_scanned += 1;
                        if let Symbol::Word(w) = *sym {
                            *counts.entry(w).or_insert(0) += 1;
                            work.table_ops += 1;
                        }
                    }
                }
            }
            // Rule-local words scaled by occurrences within this partition.
            for (r, rule_fw) in fw.iter().enumerate().skip(1) {
                let occ: u64 = rule_fw
                    .iter()
                    .filter(|(f, _)| file_set.contains(f))
                    .map(|(_, &c)| c)
                    .sum();
                if occ == 0 {
                    continue;
                }
                for &(w, c) in &dag.local_words[r] {
                    *counts.entry(w).or_insert(0) += c as u64 * occ;
                    work.table_ops += 1;
                }
                work.elements_scanned += dag.rule_lengths[r] as u64;
            }
            let wc = WordCountResult::from_unsorted_pairs(counts.into_iter().collect());
            if task == Task::WordCount {
                (AnalyticsOutput::WordCount(wc), work)
            } else {
                (AnalyticsOutput::Sort(SortResult::from_word_count(&wc)), work)
            }
        }
        Task::InvertedIndex => {
            let mut sets: FxHashMap<WordId, FxHashSet<FileId>> = FxHashMap::default();
            for &f in files {
                if let Some(&(start, end)) = segments.get(f as usize) {
                    for sym in &grammar.root()[start..end] {
                        work.elements_scanned += 1;
                        if let Symbol::Word(w) = *sym {
                            sets.entry(w).or_default().insert(f);
                            work.table_ops += 1;
                        }
                    }
                }
            }
            for (r, rule_fw) in fw.iter().enumerate().skip(1) {
                for (&f, _) in rule_fw.iter().filter(|(f, _)| file_set.contains(f)) {
                    for &(w, _) in &dag.local_words[r] {
                        sets.entry(w).or_default().insert(f);
                        work.table_ops += 1;
                    }
                }
            }
            let rows = sets
                .into_iter()
                .map(|(w, s)| {
                    let mut v: Vec<FileId> = s.into_iter().collect();
                    v.sort_unstable();
                    (w, v)
                })
                .collect();
            (
                AnalyticsOutput::InvertedIndex(InvertedIndexResult::from_unsorted_rows(rows)),
                work,
            )
        }
        Task::TermVector => {
            // Produce full-size vectors with only this partition's files filled
            // in; the merger adds element-wise.
            let num_files = grammar.num_files();
            let mut vectors: Vec<Vec<(WordId, u64)>> = vec![Vec::new(); num_files];
            for &f in files {
                vectors[f as usize] =
                    crate::apps::term_vector::term_vector_for_file(grammar, dag, fw, f);
                work.table_ops += vectors[f as usize].len() as u64;
            }
            (
                AnalyticsOutput::TermVector(TermVectorResult::from_rows(vectors)),
                work,
            )
        }
        Task::SequenceCount => {
            let l = cfg.sequence_length;
            let mut counts: FxHashMap<Sequence, u64> = FxHashMap::default();
            let mut window: Vec<WordId> = Vec::with_capacity(l);
            for &f in files {
                window.clear();
                stream_file_words(grammar, f, &mut work, |w| {
                    if window.len() == l {
                        window.rotate_left(1);
                        window.pop();
                    }
                    window.push(w);
                    if window.len() == l {
                        *counts.entry(window.clone()).or_insert(0) += 1;
                    }
                });
            }
            (
                AnalyticsOutput::SequenceCount(SequenceCountResult::from_unsorted_pairs(
                    l,
                    counts.into_iter().collect(),
                )),
                work,
            )
        }
        Task::RankedInvertedIndex => {
            let l = cfg.sequence_length;
            let mut per_seq: FxHashMap<Sequence, FxHashMap<FileId, u64>> = FxHashMap::default();
            let mut window: Vec<WordId> = Vec::with_capacity(l);
            for &f in files {
                window.clear();
                stream_file_words(grammar, f, &mut work, |w| {
                    if window.len() == l {
                        window.rotate_left(1);
                        window.pop();
                    }
                    window.push(w);
                    if window.len() == l {
                        *per_seq
                            .entry(window.clone())
                            .or_default()
                            .entry(f)
                            .or_insert(0) += 1;
                    }
                });
            }
            let rows = per_seq
                .into_iter()
                .map(|(seq, m)| {
                    let mut v: Vec<(FileId, u64)> = m.into_iter().collect();
                    v.sort_unstable_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));
                    (seq, v)
                })
                .collect();
            (
                AnalyticsOutput::RankedInvertedIndex(RankedInvertedIndexResult::from_unsorted_rows(
                    l, rows,
                )),
                work,
            )
        }
    }
}

/// Merges per-partition partial outputs into the final result.
fn merge_outputs(
    task: Task,
    cfg: TaskConfig,
    num_files: usize,
    partials: Vec<AnalyticsOutput>,
) -> AnalyticsOutput {
    match task {
        Task::WordCount => {
            let mut counts: FxHashMap<WordId, u64> = FxHashMap::default();
            for p in partials {
                if let AnalyticsOutput::WordCount(r) = p {
                    for (w, c) in r.iter() {
                        *counts.entry(w).or_insert(0) += c;
                    }
                }
            }
            AnalyticsOutput::WordCount(WordCountResult::from_unsorted_pairs(
                counts.into_iter().collect(),
            ))
        }
        Task::Sort => {
            let mut counts: FxHashMap<WordId, u64> = FxHashMap::default();
            for p in partials {
                if let AnalyticsOutput::Sort(r) = p {
                    for (w, c) in r.ranked {
                        *counts.entry(w).or_insert(0) += c;
                    }
                }
            }
            let wc = WordCountResult::from_unsorted_pairs(counts.into_iter().collect());
            AnalyticsOutput::Sort(SortResult::from_word_count(&wc))
        }
        Task::InvertedIndex => {
            let mut postings: FxHashMap<WordId, Vec<FileId>> = FxHashMap::default();
            for p in &partials {
                if let AnalyticsOutput::InvertedIndex(r) = p {
                    for (w, files) in r.iter() {
                        postings.entry(w).or_default().extend_from_slice(files);
                    }
                }
            }
            for files in postings.values_mut() {
                files.sort_unstable();
                files.dedup();
            }
            AnalyticsOutput::InvertedIndex(InvertedIndexResult::from_unsorted_rows(
                postings.into_iter().collect(),
            ))
        }
        Task::TermVector => {
            let mut vectors: Vec<Vec<(WordId, u64)>> = vec![Vec::new(); num_files];
            for p in &partials {
                if let AnalyticsOutput::TermVector(r) = p {
                    for (f, v) in r.iter().enumerate() {
                        if !v.is_empty() {
                            vectors[f] = v.to_vec();
                        }
                    }
                }
            }
            AnalyticsOutput::TermVector(TermVectorResult::from_rows(vectors))
        }
        Task::SequenceCount => {
            let mut counts: FxHashMap<Sequence, u64> = FxHashMap::default();
            for p in &partials {
                if let AnalyticsOutput::SequenceCount(r) = p {
                    for (s, c) in r.iter() {
                        *counts.entry(s.to_vec()).or_insert(0) += c;
                    }
                }
            }
            AnalyticsOutput::SequenceCount(SequenceCountResult::from_unsorted_pairs(
                cfg.sequence_length,
                counts.into_iter().collect(),
            ))
        }
        Task::RankedInvertedIndex => {
            let mut postings: FxHashMap<Sequence, Vec<(FileId, u64)>> = FxHashMap::default();
            for p in &partials {
                if let AnalyticsOutput::RankedInvertedIndex(r) = p {
                    for (s, v) in r.iter() {
                        postings.entry(s.to_vec()).or_default().extend_from_slice(v);
                    }
                }
            }
            for v in postings.values_mut() {
                v.sort_unstable_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));
            }
            AnalyticsOutput::RankedInvertedIndex(RankedInvertedIndexResult::from_unsorted_rows(
                cfg.sequence_length,
                postings.into_iter().collect(),
            ))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::apps::run_task;
    use sequitur::compress::{compress_corpus, CompressOptions};

    fn build() -> (TadocArchive, Dag) {
        let corpus: Vec<(String, String)> = (0..7)
            .map(|i| {
                (
                    format!("doc{i}"),
                    format!("shared body of text repeated across files plus unique token{i} and shared body of text again"),
                )
            })
            .collect();
        let archive = compress_corpus(&corpus, CompressOptions::default());
        let dag = Dag::from_grammar(&archive.grammar);
        (archive, dag)
    }

    #[test]
    fn partitioning_covers_all_files_exactly_once() {
        let parts = partition_files(10, 3);
        let mut all: Vec<FileId> = parts.iter().flatten().copied().collect();
        all.sort_unstable();
        assert_eq!(all, (0..10).collect::<Vec<_>>());
        assert!(parts.iter().all(|p| !p.is_empty()));
    }

    #[test]
    fn partitioning_with_more_threads_than_files() {
        let parts = partition_files(2, 8);
        assert_eq!(parts.len(), 2, "partitions are capped at the file count");
        assert!(parts.iter().all(|p| !p.is_empty()));
        let total: usize = parts.iter().map(|p| p.len()).sum();
        assert_eq!(total, 2);
    }

    #[test]
    fn partitioning_zero_files_yields_no_partitions() {
        assert!(partition_files(0, 4).is_empty());
        assert!(partition_files(0, 0).is_empty());
    }

    #[test]
    fn partitioning_zero_parts_is_clamped_to_one() {
        let parts = partition_files(5, 0);
        assert_eq!(parts.len(), 1);
        assert_eq!(parts[0], vec![0, 1, 2, 3, 4]);
    }

    #[test]
    fn parallel_results_equal_sequential_results() {
        let (archive, dag) = build();
        let cfg = TaskConfig::default();
        let pcfg = ParallelConfig { num_threads: 3 };
        for task in Task::ALL {
            let seq = run_task(&archive, &dag, task, cfg);
            let par = run_task_parallel(&archive, &dag, task, cfg, pcfg);
            assert_eq!(
                par.output,
                seq.output,
                "parallel {} diverges from sequential",
                task.name()
            );
        }
    }

    #[test]
    fn single_thread_parallel_is_also_correct() {
        let (archive, dag) = build();
        let cfg = TaskConfig::default();
        let pcfg = ParallelConfig { num_threads: 1 };
        let seq = run_task(&archive, &dag, Task::WordCount, cfg);
        let par = run_task_parallel(&archive, &dag, Task::WordCount, cfg, pcfg);
        assert_eq!(par.output, seq.output);
    }
}
