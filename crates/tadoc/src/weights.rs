//! Rule weights and per-file weights.
//!
//! * The *weight* of a rule is the number of times it occurs in the fully
//!   expanded corpus (what Algorithm 1 of the paper accumulates into
//!   `rule.weight` during the top-down traversal).
//! * The *file weight* of a rule is its number of occurrences inside each
//!   individual file, which file-sensitive tasks (inverted index, term
//!   vector, ranked inverted index) propagate from the root downward.

use crate::results::FileId;
use crate::timing::WorkStats;
use sequitur::fxhash::FxHashMap;
use sequitur::{Dag, Grammar, RuleId, Symbol};

/// Computes the total occurrence count of every rule in the expanded corpus.
///
/// The root has weight 1; every other rule accumulates
/// `freq(parent, child) * weight(parent)` over its parents, processed in a
/// parents-before-children order.
pub fn rule_weights(dag: &Dag, work: &mut WorkStats) -> Vec<u64> {
    let mut weights = vec![0u64; dag.num_rules];
    if dag.num_rules == 0 {
        return weights;
    }
    weights[0] = 1;
    for &r in dag.topo_children_first.iter().rev() {
        let w = weights[r as usize];
        if w == 0 {
            continue;
        }
        for &(c, freq) in &dag.children[r as usize] {
            weights[c as usize] += freq as u64 * w;
            work.elements_scanned += 1;
        }
    }
    weights
}

/// The half-open element ranges of the root body belonging to each file.
///
/// File `i` covers root elements `segments[i].0 .. segments[i].1`; splitter
/// elements themselves belong to no file.
pub fn file_segments(grammar: &Grammar) -> Vec<(usize, usize)> {
    let root = grammar.root();
    let mut segments = Vec::new();
    let mut start = 0usize;
    for (i, sym) in root.iter().enumerate() {
        if sym.is_splitter() {
            segments.push((start, i));
            start = i + 1;
        }
    }
    segments.push((start, root.len()));
    segments
}

/// Per-rule, per-file occurrence counts.
///
/// `file_weights[r]` maps file id → number of occurrences of rule `r` inside
/// that file.  The root is excluded (its elements are attributed directly via
/// [`file_segments`]).
pub fn file_weights(
    grammar: &Grammar,
    dag: &Dag,
    work: &mut WorkStats,
) -> Vec<FxHashMap<FileId, u64>> {
    let n = dag.num_rules;
    let mut fw: Vec<FxHashMap<FileId, u64>> = vec![FxHashMap::default(); n];
    if n == 0 {
        return fw;
    }

    // Seed: direct rule references in the root, attributed to their file.
    let segments = file_segments(grammar);
    let root = grammar.root();
    for (fid, &(start, end)) in segments.iter().enumerate() {
        for sym in &root[start..end] {
            work.elements_scanned += 1;
            if let Symbol::Rule(c) = sym {
                *fw[*c as usize].entry(fid as FileId).or_insert(0) += 1;
                work.table_ops += 1;
            }
        }
    }

    // Propagate downward, parents before children, skipping the root (already
    // handled by the seeding step).
    for &r in dag.topo_children_first.iter().rev() {
        if r == 0 {
            continue;
        }
        if fw[r as usize].is_empty() {
            continue;
        }
        let parent_weights: Vec<(FileId, u64)> =
            fw[r as usize].iter().map(|(&f, &c)| (f, c)).collect();
        for &(c, freq) in &dag.children[r as usize] {
            let entry = &mut fw[c as usize];
            for &(f, cnt) in &parent_weights {
                *entry.entry(f).or_insert(0) += cnt * freq as u64;
                work.table_ops += 1;
            }
        }
    }
    fw
}

/// Sums the per-file weights of a rule back into its total weight; used by
/// invariant tests (`Σ_f file_weight[r][f] == weight[r]`).
pub fn total_of_file_weights(fw: &FxHashMap<FileId, u64>) -> u64 {
    fw.values().sum()
}

/// Streams the fully expanded word sequence of one file, invoking `emit` for
/// every word in order.  Used by the sequence-sensitive CPU baselines (which,
/// as the paper notes, behave close to uncompressed processing) and by
/// verification code.
pub fn stream_file_words<F: FnMut(sequitur::WordId)>(
    grammar: &Grammar,
    file: FileId,
    work: &mut WorkStats,
    mut emit: F,
) {
    let segments = file_segments(grammar);
    let Some(&(start, end)) = segments.get(file as usize) else {
        return;
    };
    let root = grammar.root();
    // Explicit stack of (rule, position) to avoid recursion depth limits.
    for sym in &root[start..end] {
        work.elements_scanned += 1;
        match *sym {
            Symbol::Word(w) => {
                work.words_emitted += 1;
                emit(w);
            }
            Symbol::Rule(r) => {
                stream_rule_words(grammar, r, work, &mut emit);
            }
            Symbol::Splitter(_) => {}
        }
    }
}

fn stream_rule_words<F: FnMut(sequitur::WordId)>(
    grammar: &Grammar,
    rule: RuleId,
    work: &mut WorkStats,
    emit: &mut F,
) {
    let mut stack: Vec<(RuleId, usize)> = vec![(rule, 0)];
    while let Some((r, idx)) = stack.pop() {
        let body = &grammar.rules[r as usize];
        let mut i = idx;
        while i < body.len() {
            work.elements_scanned += 1;
            match body[i] {
                Symbol::Word(w) => {
                    work.words_emitted += 1;
                    emit(w);
                    i += 1;
                }
                Symbol::Rule(c) => {
                    stack.push((r, i + 1));
                    stack.push((c, 0));
                    break;
                }
                Symbol::Splitter(_) => {
                    i += 1;
                }
            }
        }
        if i >= body.len() {
            continue;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Figure 1's grammar.
    fn paper_grammar() -> Grammar {
        Grammar::new(vec![
            vec![
                Symbol::Rule(1),
                Symbol::Rule(1),
                Symbol::Splitter(0),
                Symbol::Rule(2),
                Symbol::Word(1),
            ],
            vec![
                Symbol::Rule(2),
                Symbol::Word(3),
                Symbol::Rule(2),
                Symbol::Word(4),
            ],
            vec![Symbol::Word(1), Symbol::Word(2)],
        ])
    }

    #[test]
    fn rule_weights_match_expansion_counts() {
        let g = paper_grammar();
        let dag = Dag::from_grammar(&g);
        let mut work = WorkStats::default();
        let w = rule_weights(&dag, &mut work);
        assert_eq!(w, vec![1, 2, 5]); // R1 twice; R2 = 2*2 (via R1) + 1 (root)
        assert!(work.elements_scanned > 0);
    }

    #[test]
    fn file_segments_split_on_splitters() {
        let g = paper_grammar();
        let segs = file_segments(&g);
        assert_eq!(segs, vec![(0, 2), (3, 5)]);
    }

    #[test]
    fn file_weights_attribute_rules_to_files() {
        let g = paper_grammar();
        let dag = Dag::from_grammar(&g);
        let mut work = WorkStats::default();
        let fw = file_weights(&g, &dag, &mut work);
        // R1 appears twice, only in file 0.
        assert_eq!(fw[1].get(&0), Some(&2));
        assert_eq!(fw[1].get(&1), None);
        // R2 appears 4 times in file 0 (via R1) and once in file 1.
        assert_eq!(fw[2].get(&0), Some(&4));
        assert_eq!(fw[2].get(&1), Some(&1));
    }

    #[test]
    fn file_weights_sum_to_rule_weights() {
        let g = paper_grammar();
        let dag = Dag::from_grammar(&g);
        let mut work = WorkStats::default();
        let w = rule_weights(&dag, &mut work);
        let fw = file_weights(&g, &dag, &mut work);
        for r in 1..dag.num_rules {
            assert_eq!(total_of_file_weights(&fw[r]), w[r], "rule {r}");
        }
    }

    #[test]
    fn stream_file_words_reconstructs_each_file() {
        let g = paper_grammar();
        let mut work = WorkStats::default();
        let mut f0 = Vec::new();
        stream_file_words(&g, 0, &mut work, |w| f0.push(w));
        assert_eq!(f0, vec![1, 2, 3, 1, 2, 4, 1, 2, 3, 1, 2, 4]);
        let mut f1 = Vec::new();
        stream_file_words(&g, 1, &mut work, |w| f1.push(w));
        assert_eq!(f1, vec![1, 2, 1]);
        assert_eq!(work.words_emitted, 15);
    }

    #[test]
    fn stream_missing_file_is_empty() {
        let g = paper_grammar();
        let mut work = WorkStats::default();
        let mut out = Vec::new();
        stream_file_words(&g, 9, &mut work, |w| out.push(w));
        assert!(out.is_empty());
    }

    #[test]
    fn deep_nesting_streams_without_recursion_overflow() {
        // R0 -> R1 -> R2 -> ... -> R_depth, each rule = [Rule(next), Word(i)].
        let depth = 4000u32;
        let mut rules: Vec<Vec<Symbol>> = Vec::new();
        for i in 0..depth {
            rules.push(vec![Symbol::Rule(i + 1), Symbol::Word(i)]);
        }
        rules.push(vec![Symbol::Word(depth)]);
        let g = Grammar::new(rules);
        let mut work = WorkStats::default();
        let mut out = Vec::new();
        stream_file_words(&g, 0, &mut work, |w| out.push(w));
        assert_eq!(out.len(), depth as usize + 1);
        assert_eq!(out[0], depth); // deepest word comes first
    }
}
