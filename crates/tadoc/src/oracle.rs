//! Ground-truth oracle: every analytics task computed directly on the
//! decompressed token streams.
//!
//! The oracle is deliberately the most straightforward possible
//! implementation; it is used (a) to validate both TADOC and G-TADOC in tests
//! and (b) as the CPU *uncompressed* baseline of Section VI-E.
//!
//! Scratch hash maps are fine *during* the scan — the hash-free mandate
//! applies to the fine-grained finalize path — but each result is converted
//! to the ordered columnar form exactly once, at the end.

use crate::results::*;
use sequitur::fxhash::FxHashMap;
use sequitur::WordId;

/// Word count over per-file token streams.
pub fn word_count(files: &[Vec<WordId>]) -> WordCountResult {
    let mut counts: FxHashMap<WordId, u64> = FxHashMap::default();
    for file in files {
        for &w in file {
            *counts.entry(w).or_insert(0) += 1;
        }
    }
    WordCountResult::from_unsorted_pairs(counts.into_iter().collect())
}

/// Words ranked by global frequency.
pub fn sort(files: &[Vec<WordId>]) -> SortResult {
    SortResult::from_word_count(&word_count(files))
}

/// Word → files containing it.
pub fn inverted_index(files: &[Vec<WordId>]) -> InvertedIndexResult {
    let mut postings: FxHashMap<WordId, Vec<FileId>> = FxHashMap::default();
    for (fid, file) in files.iter().enumerate() {
        let mut seen: Vec<WordId> = file.to_vec();
        seen.sort_unstable();
        seen.dedup();
        for w in seen {
            postings.entry(w).or_default().push(fid as FileId);
        }
    }
    // Files were visited in ascending order, so each posting list is sorted.
    InvertedIndexResult::from_unsorted_rows(postings.into_iter().collect())
}

/// Per-file word-frequency vectors.
pub fn term_vector(files: &[Vec<WordId>]) -> TermVectorResult {
    let vectors = files
        .iter()
        .map(|file| {
            let mut counts: FxHashMap<WordId, u64> = FxHashMap::default();
            for &w in file {
                *counts.entry(w).or_insert(0) += 1;
            }
            let mut v: Vec<(WordId, u64)> = counts.into_iter().collect();
            v.sort_unstable();
            v
        })
        .collect();
    TermVectorResult::from_rows(vectors)
}

/// Global counts of every `l`-word consecutive sequence.
pub fn sequence_count(files: &[Vec<WordId>], l: usize) -> SequenceCountResult {
    assert!(l >= 1, "sequence length must be at least 1");
    let mut counts: FxHashMap<Sequence, u64> = FxHashMap::default();
    for file in files {
        if file.len() < l {
            continue;
        }
        for window in file.windows(l) {
            *counts.entry(window.to_vec()).or_insert(0) += 1;
        }
    }
    SequenceCountResult::from_unsorted_pairs(l, counts.into_iter().collect())
}

/// Every `l`-word sequence → files ranked by in-file frequency.
pub fn ranked_inverted_index(files: &[Vec<WordId>], l: usize) -> RankedInvertedIndexResult {
    assert!(l >= 1, "sequence length must be at least 1");
    let mut per_seq: FxHashMap<Sequence, FxHashMap<FileId, u64>> = FxHashMap::default();
    for (fid, file) in files.iter().enumerate() {
        if file.len() < l {
            continue;
        }
        for window in file.windows(l) {
            *per_seq
                .entry(window.to_vec())
                .or_default()
                .entry(fid as FileId)
                .or_insert(0) += 1;
        }
    }
    let rows = per_seq
        .into_iter()
        .map(|(seq, files)| {
            let mut ranked: Vec<(FileId, u64)> = files.into_iter().collect();
            ranked.sort_unstable_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));
            (seq, ranked)
        })
        .collect();
    RankedInvertedIndexResult::from_unsorted_rows(l, rows)
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Figure 1's corpus: fileA = w1 w2 w3 w1 w2 w4 ×2, fileB = w1 w2 w1.
    fn paper_files() -> Vec<Vec<WordId>> {
        vec![vec![1, 2, 3, 1, 2, 4, 1, 2, 3, 1, 2, 4], vec![1, 2, 1]]
    }

    #[test]
    fn word_count_matches_figure_2() {
        let wc = word_count(&paper_files());
        // Paper Figure 2 final result: <w1,6>, <w2,5>, <w3,2>, <w4,2>
        assert_eq!(wc.count(1), 6);
        assert_eq!(wc.count(2), 5);
        assert_eq!(wc.count(3), 2);
        assert_eq!(wc.count(4), 2);
        assert_eq!(wc.distinct_words(), 4);
    }

    #[test]
    fn sort_ranks_w1_first() {
        let s = sort(&paper_files());
        assert_eq!(s.ranked[0], (1, 6));
        assert_eq!(s.ranked[1], (2, 5));
    }

    #[test]
    fn inverted_index_paper_corpus() {
        let idx = inverted_index(&paper_files());
        assert_eq!(idx.files_for(3), &[0]);
        assert_eq!(idx.files_for(1), &[0, 1]);
        assert_eq!(idx.files_for(4), &[0]);
    }

    #[test]
    fn term_vector_paper_corpus() {
        let tv = term_vector(&paper_files());
        assert_eq!(tv.frequency(0, 1), 4);
        assert_eq!(tv.frequency(1, 1), 2);
        assert_eq!(tv.frequency(1, 3), 0);
    }

    #[test]
    fn sequence_count_windows() {
        let sc = sequence_count(&paper_files(), 3);
        // fileA has windows: (1,2,3)x2 (2,3,1)x2 ... ; fileB has (1,2,1).
        assert_eq!(sc.count(&[1, 2, 3]), 2);
        assert_eq!(sc.count(&[1, 2, 1]), 1);
        assert_eq!(sc.count(&[1, 2, 4]), 2);
        let total: u64 = sc.total_occurrences();
        assert_eq!(total, (12 - 2) + (3 - 2));
    }

    #[test]
    fn sequence_count_short_files_are_skipped() {
        let sc = sequence_count(&[vec![1, 2], vec![5]], 3);
        assert!(sc.is_empty());
    }

    #[test]
    fn ranked_inverted_index_ranks_by_count() {
        let files = vec![vec![1, 2, 1, 2], vec![1, 2, 9, 1, 2, 9, 1, 2]];
        let rii = ranked_inverted_index(&files, 2);
        // (1,2) occurs 2x in file0 and 3x in file1 → file1 first.
        assert_eq!(rii.files_for(&[1, 2]), &[(1, 3), (0, 2)]);
    }

    #[test]
    fn ranked_inverted_index_tie_breaks_by_file_id() {
        let files = vec![vec![1, 2, 3], vec![1, 2, 3]];
        let rii = ranked_inverted_index(&files, 3);
        assert_eq!(rii.files_for(&[1, 2, 3]), &[(0, 1), (1, 1)]);
    }

    #[test]
    fn unit_length_sequences_reduce_to_word_count() {
        let files = paper_files();
        let sc = sequence_count(&files, 1);
        let wc = word_count(&files);
        assert_eq!(sc.count(&[1]), wc.count(1));
        assert_eq!(sc.distinct_sequences(), wc.distinct_words());
    }
}
