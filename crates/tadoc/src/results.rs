//! Result types of the six CompressDirect analytics tasks.
//!
//! The same types are produced by the CPU baseline (`tadoc`), by G-TADOC
//! (`gtadoc`), and by the uncompressed baselines, which makes cross-checking
//! the three implementations trivial.

use sequitur::fxhash::FxHashMap;
use sequitur::WordId;

/// A fixed-length word sequence (the key of sequence-sensitive tasks).
pub type Sequence = Vec<WordId>;
/// File identifier (index into the archive's file list).
pub type FileId = u32;

/// *word count*: total frequency of every word across the corpus.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct WordCountResult {
    /// word → total occurrences.
    pub counts: FxHashMap<WordId, u64>,
}

impl WordCountResult {
    /// Total number of word occurrences (sums all counts).
    pub fn total_occurrences(&self) -> u64 {
        self.counts.values().sum()
    }

    /// Number of distinct words observed.
    pub fn distinct_words(&self) -> usize {
        self.counts.len()
    }

    /// Converts into a deterministic sorted vector (by word id).
    pub fn to_sorted_vec(&self) -> Vec<(WordId, u64)> {
        let mut v: Vec<_> = self.counts.iter().map(|(&w, &c)| (w, c)).collect();
        v.sort_unstable();
        v
    }
}

/// *sort*: words ranked by total frequency (descending, ties by word id).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct SortResult {
    /// `(word, frequency)` in rank order.
    pub ranked: Vec<(WordId, u64)>,
}

impl SortResult {
    /// Builds the ranking from a word-count result.
    pub fn from_word_count(wc: &WordCountResult) -> Self {
        let mut ranked: Vec<_> = wc.counts.iter().map(|(&w, &c)| (w, c)).collect();
        ranked.sort_unstable_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));
        Self { ranked }
    }

    /// The `k` most frequent words.
    pub fn top_k(&self, k: usize) -> &[(WordId, u64)] {
        &self.ranked[..k.min(self.ranked.len())]
    }
}

/// *inverted index*: word → sorted list of files containing it.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct InvertedIndexResult {
    /// word → ascending file ids.
    pub postings: FxHashMap<WordId, Vec<FileId>>,
}

impl InvertedIndexResult {
    /// Number of indexed words.
    pub fn distinct_words(&self) -> usize {
        self.postings.len()
    }

    /// Total posting-list entries.
    pub fn total_postings(&self) -> usize {
        self.postings.values().map(|p| p.len()).sum()
    }

    /// Files containing `word` (empty slice if absent).
    pub fn files_for(&self, word: WordId) -> &[FileId] {
        self.postings.get(&word).map(|v| v.as_slice()).unwrap_or(&[])
    }
}

/// *term vector*: per-file word-frequency vector.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct TermVectorResult {
    /// `vectors[file]` = ascending `(word, count)` pairs.
    pub vectors: Vec<Vec<(WordId, u64)>>,
}

impl TermVectorResult {
    /// Number of files covered.
    pub fn num_files(&self) -> usize {
        self.vectors.len()
    }

    /// Frequency of `word` in `file` (0 if absent).
    pub fn frequency(&self, file: FileId, word: WordId) -> u64 {
        self.vectors
            .get(file as usize)
            .and_then(|v| v.binary_search_by_key(&word, |&(w, _)| w).ok().map(|i| v[i].1))
            .unwrap_or(0)
    }
}

/// *sequence count*: global frequency of every `l`-word consecutive sequence
/// (sequences never span file boundaries).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct SequenceCountResult {
    /// Sequence length `l`.
    pub l: usize,
    /// sequence → total occurrences.
    pub counts: FxHashMap<Sequence, u64>,
}

impl SequenceCountResult {
    /// Number of distinct sequences.
    pub fn distinct_sequences(&self) -> usize {
        self.counts.len()
    }

    /// Total sequence occurrences.
    pub fn total_occurrences(&self) -> u64 {
        self.counts.values().sum()
    }
}

/// *ranked inverted index*: every `l`-word sequence → files containing it,
/// ranked by in-file frequency (descending, ties by file id).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct RankedInvertedIndexResult {
    /// Sequence length `l`.
    pub l: usize,
    /// sequence → `(file, count)` in rank order.
    pub postings: FxHashMap<Sequence, Vec<(FileId, u64)>>,
}

impl RankedInvertedIndexResult {
    /// Number of indexed sequences.
    pub fn distinct_sequences(&self) -> usize {
        self.postings.len()
    }

    /// The ranked posting list for `seq` (empty if absent).
    pub fn files_for(&self, seq: &[WordId]) -> &[(FileId, u64)] {
        self.postings.get(seq).map(|v| v.as_slice()).unwrap_or(&[])
    }
}

/// Output of any of the six tasks.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum AnalyticsOutput {
    /// Word count output.
    WordCount(WordCountResult),
    /// Sort output.
    Sort(SortResult),
    /// Inverted index output.
    InvertedIndex(InvertedIndexResult),
    /// Term vector output.
    TermVector(TermVectorResult),
    /// Sequence count output.
    SequenceCount(SequenceCountResult),
    /// Ranked inverted index output.
    RankedInvertedIndex(RankedInvertedIndexResult),
}

impl AnalyticsOutput {
    /// Short task name for reports.
    pub fn task_name(&self) -> &'static str {
        match self {
            AnalyticsOutput::WordCount(_) => "wordCount",
            AnalyticsOutput::Sort(_) => "sort",
            AnalyticsOutput::InvertedIndex(_) => "invertedIndex",
            AnalyticsOutput::TermVector(_) => "termVector",
            AnalyticsOutput::SequenceCount(_) => "sequenceCount",
            AnalyticsOutput::RankedInvertedIndex(_) => "rankedInvertedIndex",
        }
    }

    /// Returns a small deterministic digest of the output, useful for quick
    /// equality checks in benchmarks without holding two full results.
    pub fn digest(&self) -> u64 {
        fn mix(h: u64, v: u64) -> u64 {
            (h ^ v).wrapping_mul(0x9E37_79B9_7F4A_7C15).rotate_left(27)
        }
        match self {
            AnalyticsOutput::WordCount(r) => {
                let mut h = 1u64;
                for (w, c) in r.to_sorted_vec() {
                    h = mix(h, (w as u64) << 32 | c & 0xffff_ffff);
                    h = mix(h, c);
                }
                h
            }
            AnalyticsOutput::Sort(r) => {
                let mut h = 2u64;
                for &(w, c) in &r.ranked {
                    h = mix(h, w as u64);
                    h = mix(h, c);
                }
                h
            }
            AnalyticsOutput::InvertedIndex(r) => {
                let mut keys: Vec<_> = r.postings.keys().copied().collect();
                keys.sort_unstable();
                let mut h = 3u64;
                for w in keys {
                    h = mix(h, w as u64);
                    for &f in &r.postings[&w] {
                        h = mix(h, f as u64);
                    }
                }
                h
            }
            AnalyticsOutput::TermVector(r) => {
                let mut h = 4u64;
                for v in &r.vectors {
                    for &(w, c) in v {
                        h = mix(h, w as u64);
                        h = mix(h, c);
                    }
                    h = mix(h, 0xfeed);
                }
                h
            }
            AnalyticsOutput::SequenceCount(r) => {
                let mut keys: Vec<_> = r.counts.keys().cloned().collect();
                keys.sort_unstable();
                let mut h = 5u64;
                for k in keys {
                    for &w in &k {
                        h = mix(h, w as u64);
                    }
                    h = mix(h, r.counts[&k]);
                }
                h
            }
            AnalyticsOutput::RankedInvertedIndex(r) => {
                let mut keys: Vec<_> = r.postings.keys().cloned().collect();
                keys.sort_unstable();
                let mut h = 6u64;
                for k in keys {
                    for &w in &k {
                        h = mix(h, w as u64);
                    }
                    for &(f, c) in &r.postings[&k] {
                        h = mix(h, f as u64);
                        h = mix(h, c);
                    }
                }
                h
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn wc(pairs: &[(u32, u64)]) -> WordCountResult {
        let mut counts = FxHashMap::default();
        for &(w, c) in pairs {
            counts.insert(w, c);
        }
        WordCountResult { counts }
    }

    #[test]
    fn word_count_accessors() {
        let r = wc(&[(0, 5), (1, 3), (2, 1)]);
        assert_eq!(r.total_occurrences(), 9);
        assert_eq!(r.distinct_words(), 3);
        assert_eq!(r.to_sorted_vec(), vec![(0, 5), (1, 3), (2, 1)]);
    }

    #[test]
    fn sort_ranks_by_frequency_then_word() {
        let r = SortResult::from_word_count(&wc(&[(5, 3), (1, 7), (2, 3)]));
        assert_eq!(r.ranked, vec![(1, 7), (2, 3), (5, 3)]);
        assert_eq!(r.top_k(2), &[(1, 7), (2, 3)]);
        assert_eq!(r.top_k(10).len(), 3);
    }

    #[test]
    fn inverted_index_lookup() {
        let mut postings = FxHashMap::default();
        postings.insert(3u32, vec![0u32, 2, 5]);
        let r = InvertedIndexResult { postings };
        assert_eq!(r.files_for(3), &[0, 2, 5]);
        assert_eq!(r.files_for(9), &[] as &[u32]);
        assert_eq!(r.total_postings(), 3);
        assert_eq!(r.distinct_words(), 1);
    }

    #[test]
    fn term_vector_frequency_lookup() {
        let r = TermVectorResult {
            vectors: vec![vec![(1, 4), (7, 2)], vec![]],
        };
        assert_eq!(r.frequency(0, 7), 2);
        assert_eq!(r.frequency(0, 2), 0);
        assert_eq!(r.frequency(1, 1), 0);
        assert_eq!(r.frequency(9, 1), 0);
        assert_eq!(r.num_files(), 2);
    }

    #[test]
    fn sequence_count_accessors() {
        let mut counts = FxHashMap::default();
        counts.insert(vec![1, 2, 3], 4u64);
        counts.insert(vec![2, 3, 4], 1u64);
        let r = SequenceCountResult { l: 3, counts };
        assert_eq!(r.distinct_sequences(), 2);
        assert_eq!(r.total_occurrences(), 5);
    }

    #[test]
    fn ranked_inverted_index_lookup() {
        let mut postings = FxHashMap::default();
        postings.insert(vec![1, 2], vec![(3u32, 9u64), (0, 2)]);
        let r = RankedInvertedIndexResult { l: 2, postings };
        assert_eq!(r.files_for(&[1, 2]), &[(3, 9), (0, 2)]);
        assert!(r.files_for(&[9, 9]).is_empty());
        assert_eq!(r.distinct_sequences(), 1);
    }

    #[test]
    fn digests_distinguish_different_results() {
        let a = AnalyticsOutput::WordCount(wc(&[(0, 1), (1, 2)]));
        let b = AnalyticsOutput::WordCount(wc(&[(0, 1), (1, 3)]));
        let c = AnalyticsOutput::WordCount(wc(&[(0, 1), (1, 2)]));
        assert_ne!(a.digest(), b.digest());
        assert_eq!(a.digest(), c.digest());
    }

    #[test]
    fn task_names() {
        assert_eq!(
            AnalyticsOutput::Sort(SortResult::default()).task_name(),
            "sort"
        );
        assert_eq!(
            AnalyticsOutput::SequenceCount(SequenceCountResult::default()).task_name(),
            "sequenceCount"
        );
    }
}
