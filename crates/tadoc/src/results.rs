//! Result types of the six CompressDirect analytics tasks.
//!
//! The same types are produced by the CPU baseline (`tadoc`), by G-TADOC
//! (`gtadoc`), and by the uncompressed baselines, which makes cross-checking
//! the three implementations trivial.
//!
//! Every result is **ordered and columnar**: a sorted key column next to its
//! value column ([`SortedTable`]), or a CSR-style key arena with offsets into
//! flat posting columns ([`PostingTable`]).  Nothing here owns a hash table —
//! the fine-grained engine builds these tables directly from its sorted shard
//! runs (see `fine_grained::merge`), lookups are `O(log n)` binary searches,
//! iteration is always in ascending key order, and a serving layer can return
//! rank- or key-ordered rows as plain slices without copying.

use sequitur::WordId;

/// A fixed-length word sequence (the key of sequence-sensitive tasks).
pub type Sequence = Vec<WordId>;
/// File identifier (index into the archive's file list).
pub type FileId = u32;

// ---------------------------------------------------------------------------
// Ordered columnar containers
// ---------------------------------------------------------------------------

/// A sorted key column next to its value column.
///
/// Invariant: `keys` is strictly ascending (every key distinct) and
/// `keys.len() == values.len()`.  Lookup is a binary search, iteration is in
/// ascending key order, and both columns are exposed as slices.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct SortedTable<K, V> {
    keys: Vec<K>,
    values: Vec<V>,
}

impl<K: Ord, V> SortedTable<K, V> {
    /// An empty table.
    pub fn new() -> Self {
        Self {
            keys: Vec::new(),
            values: Vec::new(),
        }
    }

    /// Builds from columns that are already strictly ascending by key —
    /// the zero-copy path out of a sorted-run merge.
    pub fn from_sorted_columns(keys: Vec<K>, values: Vec<V>) -> Self {
        debug_assert_eq!(keys.len(), values.len());
        debug_assert!(keys.windows(2).all(|w| w[0] < w[1]), "keys must be strictly ascending");
        Self { keys, values }
    }

    /// Builds from unsorted `(key, value)` pairs with distinct keys — the
    /// one-sort finalize path of the hash-based baselines.
    pub fn from_unsorted_pairs(pairs: Vec<(K, V)>) -> Self {
        let mut pairs = pairs;
        pairs.sort_unstable_by(|a, b| a.0.cmp(&b.0));
        let mut keys = Vec::with_capacity(pairs.len());
        let mut values = Vec::with_capacity(pairs.len());
        for (k, v) in pairs {
            keys.push(k);
            values.push(v);
        }
        Self::from_sorted_columns(keys, values)
    }

    /// Number of distinct keys.
    pub fn len(&self) -> usize {
        self.keys.len()
    }

    /// Whether the table is empty.
    pub fn is_empty(&self) -> bool {
        self.keys.is_empty()
    }

    /// The sorted key column.
    pub fn keys(&self) -> &[K] {
        &self.keys
    }

    /// The value column (parallel to [`keys`](Self::keys)).
    pub fn values(&self) -> &[V] {
        &self.values
    }

    /// Binary-search lookup.
    pub fn get(&self, key: &K) -> Option<&V> {
        self.keys
            .binary_search(key)
            .ok()
            .map(|i| &self.values[i])
    }

    /// Iterates `(key, value)` in ascending key order.
    pub fn iter(&self) -> impl Iterator<Item = (&K, &V)> {
        self.keys.iter().zip(self.values.iter())
    }
}

/// Binary search for a fixed-width key inside a flat `u32` key arena.
fn find_flat_key(keys: &[u32], width: usize, needle: &[u32]) -> Option<usize> {
    if width == 0 || needle.len() != width {
        return None;
    }
    let n = keys.len() / width;
    let mut lo = 0usize;
    let mut hi = n;
    while lo < hi {
        let mid = lo + (hi - lo) / 2;
        match keys[mid * width..(mid + 1) * width].cmp(needle) {
            std::cmp::Ordering::Less => lo = mid + 1,
            std::cmp::Ordering::Greater => hi = mid,
            std::cmp::Ordering::Equal => return Some(mid),
        }
    }
    None
}

/// A CSR-style posting table: a flat, lexicographically sorted `u32` key
/// arena (`width` words per key), an offsets column, and a flat value column.
///
/// Invariants: `keys.len() == num_keys * width`, the width-sized key rows are
/// strictly ascending, `offsets.len() == num_keys + 1` with `offsets[0] == 0`
/// and `offsets[num_keys] == values.len()`.  Key `i`'s posting list is
/// `values[offsets[i]..offsets[i + 1]]`; lookup binary-searches the arena.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PostingTable<V> {
    width: usize,
    keys: Vec<u32>,
    offsets: Vec<usize>,
    values: Vec<V>,
}

impl<V> Default for PostingTable<V> {
    fn default() -> Self {
        Self::empty(0)
    }
}

impl<V> PostingTable<V> {
    /// An empty table of the given key width.
    pub fn empty(width: usize) -> Self {
        Self {
            width,
            keys: Vec::new(),
            offsets: vec![0],
            values: Vec::new(),
        }
    }

    /// Builds from already-merged columns (sorted key arena + offsets +
    /// values) — the zero-copy path out of a sorted-run merge.
    pub fn from_sorted_parts(
        width: usize,
        keys: Vec<u32>,
        offsets: Vec<usize>,
        values: Vec<V>,
    ) -> Self {
        let n = offsets.len().saturating_sub(1);
        debug_assert_eq!(offsets.first().copied().unwrap_or(0), 0);
        debug_assert_eq!(offsets.last().copied().unwrap_or(0), values.len());
        debug_assert!(offsets.windows(2).all(|w| w[0] <= w[1]));
        debug_assert_eq!(keys.len(), n * width);
        debug_assert!(
            width == 0 || keys.chunks_exact(width).zip(keys.chunks_exact(width).skip(1)).all(|(a, b)| a < b),
            "key rows must be strictly ascending"
        );
        Self {
            width,
            keys,
            offsets,
            values,
        }
    }

    /// Builds from unsorted `(key, posting-list)` rows with distinct keys —
    /// the one-sort finalize path of the hash-based baselines.
    pub fn from_unsorted_rows(width: usize, rows: Vec<(Vec<u32>, Vec<V>)>) -> Self {
        let mut rows = rows;
        rows.sort_unstable_by(|a, b| a.0.cmp(&b.0));
        let mut keys = Vec::with_capacity(rows.len() * width);
        let mut offsets = Vec::with_capacity(rows.len() + 1);
        let mut values = Vec::with_capacity(rows.iter().map(|(_, v)| v.len()).sum());
        offsets.push(0);
        for (key, list) in rows {
            debug_assert_eq!(key.len(), width);
            keys.extend_from_slice(&key);
            values.extend(list);
            offsets.push(values.len());
        }
        Self {
            width,
            keys,
            offsets,
            values,
        }
    }

    /// Words per key.
    pub fn width(&self) -> usize {
        self.width
    }

    /// Number of distinct keys.
    pub fn num_keys(&self) -> usize {
        self.offsets.len().saturating_sub(1)
    }

    /// Total posting entries across all keys.
    pub fn total_values(&self) -> usize {
        self.values.len()
    }

    /// The `i`-th key row (ascending order).
    pub fn key_at(&self, i: usize) -> &[u32] {
        &self.keys[i * self.width..(i + 1) * self.width]
    }

    /// The `i`-th posting list.
    pub fn values_at(&self, i: usize) -> &[V] {
        &self.values[self.offsets[i]..self.offsets[i + 1]]
    }

    /// Binary-search lookup: the index of `key`, if present.
    pub fn find(&self, key: &[u32]) -> Option<usize> {
        find_flat_key(&self.keys, self.width, key)
    }

    /// The posting list for `key` (empty slice if absent).
    pub fn get(&self, key: &[u32]) -> &[V] {
        self.find(key).map(|i| self.values_at(i)).unwrap_or(&[])
    }

    /// Iterates `(key-row, posting-list)` in ascending key order.
    pub fn iter(&self) -> impl Iterator<Item = (&[u32], &[V])> {
        (0..self.num_keys()).map(move |i| (self.key_at(i), self.values_at(i)))
    }

    /// The flat key arena.
    pub fn keys_flat(&self) -> &[u32] {
        &self.keys
    }

    /// The offsets column (`num_keys + 1` entries).
    pub fn offsets(&self) -> &[usize] {
        &self.offsets
    }

    /// The flat value column.
    pub fn values_flat(&self) -> &[V] {
        &self.values
    }
}

// ---------------------------------------------------------------------------
// Task results
// ---------------------------------------------------------------------------

/// *word count*: total frequency of every word across the corpus.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct WordCountResult {
    /// word → total occurrences, as a sorted word column + count column.
    pub table: SortedTable<WordId, u64>,
}

impl WordCountResult {
    /// Builds from columns already sorted by word id.
    pub fn from_sorted_columns(words: Vec<WordId>, counts: Vec<u64>) -> Self {
        Self {
            table: SortedTable::from_sorted_columns(words, counts),
        }
    }

    /// Builds from unsorted `(word, count)` pairs (one sort).
    pub fn from_unsorted_pairs(pairs: Vec<(WordId, u64)>) -> Self {
        Self {
            table: SortedTable::from_unsorted_pairs(pairs),
        }
    }

    /// Total number of word occurrences (sums all counts).
    pub fn total_occurrences(&self) -> u64 {
        self.table.values().iter().sum()
    }

    /// Number of distinct words observed.
    pub fn distinct_words(&self) -> usize {
        self.table.len()
    }

    /// Occurrences of `word` (0 if absent).
    pub fn count(&self, word: WordId) -> u64 {
        self.table.get(&word).copied().unwrap_or(0)
    }

    /// Iterates `(word, count)` in ascending word order.
    pub fn iter(&self) -> impl Iterator<Item = (WordId, u64)> + '_ {
        self.table.iter().map(|(&w, &c)| (w, c))
    }

    /// The deterministic `(word, count)` pairs sorted by word id.
    pub fn to_sorted_vec(&self) -> Vec<(WordId, u64)> {
        self.iter().collect()
    }
}

/// *sort*: words ranked by total frequency (descending, ties by word id).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct SortResult {
    /// `(word, frequency)` in rank order.
    pub ranked: Vec<(WordId, u64)>,
}

impl SortResult {
    /// Builds the ranking from a word-count result.
    pub fn from_word_count(wc: &WordCountResult) -> Self {
        let mut ranked: Vec<_> = wc.iter().collect();
        ranked.sort_unstable_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));
        Self { ranked }
    }

    /// The `k` most frequent words.
    pub fn top_k(&self, k: usize) -> &[(WordId, u64)] {
        &self.ranked[..k.min(self.ranked.len())]
    }
}

/// *inverted index*: word → sorted list of files containing it.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct InvertedIndexResult {
    /// word → ascending file ids, as a width-1 posting table.
    pub table: PostingTable<FileId>,
}

impl Default for InvertedIndexResult {
    fn default() -> Self {
        Self {
            table: PostingTable::empty(1),
        }
    }
}

impl InvertedIndexResult {
    /// Builds from already-merged columns sorted by word id.
    pub fn from_sorted_parts(words: Vec<u32>, offsets: Vec<usize>, files: Vec<FileId>) -> Self {
        Self {
            table: PostingTable::from_sorted_parts(1, words, offsets, files),
        }
    }

    /// Builds from unsorted `(word, files)` rows (one sort).
    pub fn from_unsorted_rows(rows: Vec<(WordId, Vec<FileId>)>) -> Self {
        Self {
            table: PostingTable::from_unsorted_rows(
                1,
                rows.into_iter().map(|(w, fs)| (vec![w], fs)).collect(),
            ),
        }
    }

    /// Number of indexed words.
    pub fn distinct_words(&self) -> usize {
        self.table.num_keys()
    }

    /// Total posting-list entries.
    pub fn total_postings(&self) -> usize {
        self.table.total_values()
    }

    /// Files containing `word` (empty slice if absent).
    pub fn files_for(&self, word: WordId) -> &[FileId] {
        self.table.get(&[word])
    }

    /// Iterates `(word, files)` in ascending word order.
    pub fn iter(&self) -> impl Iterator<Item = (WordId, &[FileId])> {
        self.table.iter().map(|(k, v)| (k[0], v))
    }
}

/// *term vector*: per-file word-frequency vector, file-major CSR.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TermVectorResult {
    /// `offsets[f]..offsets[f + 1]` bounds file `f`'s terms.
    offsets: Vec<usize>,
    /// Flat `(word, count)` pairs, ascending by word within each file.
    terms: Vec<(WordId, u64)>,
}

impl Default for TermVectorResult {
    fn default() -> Self {
        Self {
            offsets: vec![0],
            terms: Vec::new(),
        }
    }
}

impl TermVectorResult {
    /// Builds from one ascending `(word, count)` row per file.
    pub fn from_rows(rows: Vec<Vec<(WordId, u64)>>) -> Self {
        let mut offsets = Vec::with_capacity(rows.len() + 1);
        let mut terms = Vec::with_capacity(rows.iter().map(Vec::len).sum());
        offsets.push(0);
        for row in rows {
            debug_assert!(row.windows(2).all(|w| w[0].0 < w[1].0));
            terms.extend(row);
            offsets.push(terms.len());
        }
        Self { offsets, terms }
    }

    /// Number of files covered.
    pub fn num_files(&self) -> usize {
        self.offsets.len().saturating_sub(1)
    }

    /// Total `(word, count)` entries across all files.
    pub fn total_terms(&self) -> usize {
        self.terms.len()
    }

    /// File `f`'s vector: ascending `(word, count)` pairs (empty if out of
    /// range).
    pub fn vector(&self, file: FileId) -> &[(WordId, u64)] {
        let f = file as usize;
        if f + 1 >= self.offsets.len() {
            return &[];
        }
        &self.terms[self.offsets[f]..self.offsets[f + 1]]
    }

    /// Frequency of `word` in `file` (0 if absent).
    pub fn frequency(&self, file: FileId, word: WordId) -> u64 {
        let v = self.vector(file);
        v.binary_search_by_key(&word, |&(w, _)| w)
            .ok()
            .map(|i| v[i].1)
            .unwrap_or(0)
    }

    /// Iterates every file's vector in file order.
    pub fn iter(&self) -> impl Iterator<Item = &[(WordId, u64)]> {
        (0..self.num_files()).map(move |f| self.vector(f as FileId))
    }
}

/// *sequence count*: global frequency of every `l`-word consecutive sequence
/// (sequences never span file boundaries).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct SequenceCountResult {
    /// Sequence length `l`.
    pub l: usize,
    /// Flat key arena: `l` words per sequence, lexicographically ascending.
    keys: Vec<u32>,
    /// One total count per sequence (parallel to the key rows).
    counts: Vec<u64>,
}

impl SequenceCountResult {
    /// Builds from an already-sorted flat key arena and its count column.
    pub fn from_sorted_columns(l: usize, keys: Vec<u32>, counts: Vec<u64>) -> Self {
        debug_assert_eq!(keys.len(), counts.len() * l);
        debug_assert!(
            l == 0
                || keys
                    .chunks_exact(l)
                    .zip(keys.chunks_exact(l).skip(1))
                    .all(|(a, b)| a < b)
        );
        Self { l, keys, counts }
    }

    /// Builds from unsorted `(sequence, count)` pairs (one sort).
    pub fn from_unsorted_pairs(l: usize, pairs: Vec<(Sequence, u64)>) -> Self {
        let mut pairs = pairs;
        pairs.sort_unstable_by(|a, b| a.0.cmp(&b.0));
        let mut keys = Vec::with_capacity(pairs.len() * l);
        let mut counts = Vec::with_capacity(pairs.len());
        for (seq, c) in pairs {
            debug_assert_eq!(seq.len(), l);
            keys.extend_from_slice(&seq);
            counts.push(c);
        }
        Self { l, keys, counts }
    }

    /// Number of distinct sequences.
    pub fn distinct_sequences(&self) -> usize {
        self.counts.len()
    }

    /// Whether no sequence was observed.
    pub fn is_empty(&self) -> bool {
        self.counts.is_empty()
    }

    /// Total sequence occurrences.
    pub fn total_occurrences(&self) -> u64 {
        self.counts.iter().sum()
    }

    /// Occurrences of `seq` (0 if absent).
    pub fn count(&self, seq: &[WordId]) -> u64 {
        find_flat_key(&self.keys, self.l, seq)
            .map(|i| self.counts[i])
            .unwrap_or(0)
    }

    /// The `i`-th sequence in lexicographic order.
    pub fn key_at(&self, i: usize) -> &[u32] {
        &self.keys[i * self.l..(i + 1) * self.l]
    }

    /// Iterates `(sequence, count)` in lexicographic order.
    pub fn iter(&self) -> impl Iterator<Item = (&[u32], u64)> {
        (0..self.counts.len()).map(move |i| (self.key_at(i), self.counts[i]))
    }
}

/// *ranked inverted index*: every `l`-word sequence → files containing it,
/// ranked by in-file frequency (descending, ties by file id).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct RankedInvertedIndexResult {
    /// Sequence length `l`.
    pub l: usize,
    /// sequence → `(file, count)` in rank order, as a width-`l` posting
    /// table.
    pub table: PostingTable<(FileId, u64)>,
}

impl RankedInvertedIndexResult {
    /// Builds from already-merged columns sorted by sequence.
    pub fn from_sorted_parts(
        l: usize,
        keys: Vec<u32>,
        offsets: Vec<usize>,
        postings: Vec<(FileId, u64)>,
    ) -> Self {
        Self {
            l,
            table: PostingTable::from_sorted_parts(l, keys, offsets, postings),
        }
    }

    /// Builds from unsorted `(sequence, ranked-files)` rows (one sort).
    pub fn from_unsorted_rows(l: usize, rows: Vec<(Sequence, Vec<(FileId, u64)>)>) -> Self {
        Self {
            l,
            table: PostingTable::from_unsorted_rows(l, rows),
        }
    }

    /// Number of indexed sequences.
    pub fn distinct_sequences(&self) -> usize {
        self.table.num_keys()
    }

    /// The ranked posting list for `seq` (empty if absent).
    pub fn files_for(&self, seq: &[WordId]) -> &[(FileId, u64)] {
        self.table.get(seq)
    }

    /// Iterates `(sequence, ranked-files)` in lexicographic order.
    pub fn iter(&self) -> impl Iterator<Item = (&[u32], &[(FileId, u64)])> {
        self.table.iter()
    }
}

/// Output of any of the six tasks.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum AnalyticsOutput {
    /// Word count output.
    WordCount(WordCountResult),
    /// Sort output.
    Sort(SortResult),
    /// Inverted index output.
    InvertedIndex(InvertedIndexResult),
    /// Term vector output.
    TermVector(TermVectorResult),
    /// Sequence count output.
    SequenceCount(SequenceCountResult),
    /// Ranked inverted index output.
    RankedInvertedIndex(RankedInvertedIndexResult),
}

impl AnalyticsOutput {
    /// Short task name for reports.
    pub fn task_name(&self) -> &'static str {
        match self {
            AnalyticsOutput::WordCount(_) => "wordCount",
            AnalyticsOutput::Sort(_) => "sort",
            AnalyticsOutput::InvertedIndex(_) => "invertedIndex",
            AnalyticsOutput::TermVector(_) => "termVector",
            AnalyticsOutput::SequenceCount(_) => "sequenceCount",
            AnalyticsOutput::RankedInvertedIndex(_) => "rankedInvertedIndex",
        }
    }

    /// Returns a small deterministic digest of the output, useful for quick
    /// equality checks in benchmarks without holding two full results.
    ///
    /// One allocation-free linear pass: every result already stores its keys
    /// in the digest's iteration order (ascending / rank order), so — unlike
    /// the hash-map era, which cloned and sorted every key per call — this
    /// only walks the columns.  The mixing function, seeds, and iteration
    /// order are unchanged from the hash-map representation, and
    /// `tests/digest_stability.rs` pins the values.
    pub fn digest(&self) -> u64 {
        fn mix(h: u64, v: u64) -> u64 {
            (h ^ v).wrapping_mul(0x9E37_79B9_7F4A_7C15).rotate_left(27)
        }
        match self {
            AnalyticsOutput::WordCount(r) => {
                let mut h = 1u64;
                for (w, c) in r.iter() {
                    h = mix(h, (w as u64) << 32 | c & 0xffff_ffff);
                    h = mix(h, c);
                }
                h
            }
            AnalyticsOutput::Sort(r) => {
                let mut h = 2u64;
                for &(w, c) in &r.ranked {
                    h = mix(h, w as u64);
                    h = mix(h, c);
                }
                h
            }
            AnalyticsOutput::InvertedIndex(r) => {
                let mut h = 3u64;
                for (w, files) in r.iter() {
                    h = mix(h, w as u64);
                    for &f in files {
                        h = mix(h, f as u64);
                    }
                }
                h
            }
            AnalyticsOutput::TermVector(r) => {
                let mut h = 4u64;
                for v in r.iter() {
                    for &(w, c) in v {
                        h = mix(h, w as u64);
                        h = mix(h, c);
                    }
                    h = mix(h, 0xfeed);
                }
                h
            }
            AnalyticsOutput::SequenceCount(r) => {
                let mut h = 5u64;
                for (k, c) in r.iter() {
                    for &w in k {
                        h = mix(h, w as u64);
                    }
                    h = mix(h, c);
                }
                h
            }
            AnalyticsOutput::RankedInvertedIndex(r) => {
                let mut h = 6u64;
                for (k, files) in r.iter() {
                    for &w in k {
                        h = mix(h, w as u64);
                    }
                    for &(f, c) in files {
                        h = mix(h, f as u64);
                        h = mix(h, c);
                    }
                }
                h
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn wc(pairs: &[(u32, u64)]) -> WordCountResult {
        WordCountResult::from_unsorted_pairs(pairs.to_vec())
    }

    #[test]
    fn word_count_accessors() {
        let r = wc(&[(2, 1), (0, 5), (1, 3)]);
        assert_eq!(r.total_occurrences(), 9);
        assert_eq!(r.distinct_words(), 3);
        assert_eq!(r.to_sorted_vec(), vec![(0, 5), (1, 3), (2, 1)]);
        assert_eq!(r.count(0), 5);
        assert_eq!(r.count(7), 0);
    }

    #[test]
    fn sorted_table_lookup_and_columns() {
        let t = SortedTable::from_unsorted_pairs(vec![(3u32, "c"), (1, "a"), (2, "b")]);
        assert_eq!(t.keys(), &[1, 2, 3]);
        assert_eq!(t.values(), &["a", "b", "c"]);
        assert_eq!(t.get(&2), Some(&"b"));
        assert_eq!(t.get(&9), None);
        assert_eq!(t.len(), 3);
        assert!(!t.is_empty());
        assert_eq!(SortedTable::<u32, u32>::new().len(), 0);
    }

    #[test]
    fn posting_table_csr_invariants() {
        let t = PostingTable::from_unsorted_rows(
            2,
            vec![(vec![4, 1], vec![9u32]), (vec![1, 2], vec![5, 6, 7])],
        );
        assert_eq!(t.num_keys(), 2);
        assert_eq!(t.width(), 2);
        assert_eq!(t.key_at(0), &[1, 2]);
        assert_eq!(t.values_at(0), &[5, 6, 7]);
        assert_eq!(t.get(&[4, 1]), &[9]);
        assert_eq!(t.get(&[4, 2]), &[] as &[u32]);
        assert_eq!(t.get(&[4]), &[] as &[u32]); // wrong width
        assert_eq!(t.total_values(), 4);
        assert_eq!(t.offsets(), &[0, 3, 4]);
        assert_eq!(t.keys_flat(), &[1, 2, 4, 1]);
    }

    #[test]
    fn sort_ranks_by_frequency_then_word() {
        let r = SortResult::from_word_count(&wc(&[(5, 3), (1, 7), (2, 3)]));
        assert_eq!(r.ranked, vec![(1, 7), (2, 3), (5, 3)]);
        assert_eq!(r.top_k(2), &[(1, 7), (2, 3)]);
        assert_eq!(r.top_k(10).len(), 3);
    }

    #[test]
    fn inverted_index_lookup() {
        let r = InvertedIndexResult::from_unsorted_rows(vec![(3u32, vec![0u32, 2, 5])]);
        assert_eq!(r.files_for(3), &[0, 2, 5]);
        assert_eq!(r.files_for(9), &[] as &[u32]);
        assert_eq!(r.total_postings(), 3);
        assert_eq!(r.distinct_words(), 1);
    }

    #[test]
    fn term_vector_frequency_lookup() {
        let r = TermVectorResult::from_rows(vec![vec![(1, 4), (7, 2)], vec![]]);
        assert_eq!(r.frequency(0, 7), 2);
        assert_eq!(r.frequency(0, 2), 0);
        assert_eq!(r.frequency(1, 1), 0);
        assert_eq!(r.frequency(9, 1), 0);
        assert_eq!(r.num_files(), 2);
        assert_eq!(r.vector(0), &[(1, 4), (7, 2)]);
        assert_eq!(r.vector(1), &[] as &[(u32, u64)]);
    }

    #[test]
    fn sequence_count_accessors() {
        let r = SequenceCountResult::from_unsorted_pairs(
            3,
            vec![(vec![2, 3, 4], 1u64), (vec![1, 2, 3], 4u64)],
        );
        assert_eq!(r.distinct_sequences(), 2);
        assert_eq!(r.total_occurrences(), 5);
        assert_eq!(r.count(&[1, 2, 3]), 4);
        assert_eq!(r.count(&[9, 9, 9]), 0);
        assert_eq!(r.key_at(0), &[1, 2, 3]);
    }

    #[test]
    fn ranked_inverted_index_lookup() {
        let r = RankedInvertedIndexResult::from_unsorted_rows(
            2,
            vec![(vec![1, 2], vec![(3u32, 9u64), (0, 2)])],
        );
        assert_eq!(r.files_for(&[1, 2]), &[(3, 9), (0, 2)]);
        assert!(r.files_for(&[9, 9]).is_empty());
        assert_eq!(r.distinct_sequences(), 1);
    }

    #[test]
    fn empty_results_from_any_constructor_are_equal() {
        // Equality must not depend on which construction path produced an
        // empty result (cross-implementation checks compare empties too).
        assert_eq!(
            InvertedIndexResult::default(),
            InvertedIndexResult::from_unsorted_rows(Vec::new())
        );
        assert_eq!(
            TermVectorResult::default(),
            TermVectorResult::from_rows(Vec::new())
        );
        assert_eq!(
            SequenceCountResult::from_sorted_columns(3, Vec::new(), Vec::new()),
            SequenceCountResult::from_unsorted_pairs(3, Vec::new())
        );
        assert_eq!(
            RankedInvertedIndexResult::from_sorted_parts(3, Vec::new(), vec![0], Vec::new()),
            RankedInvertedIndexResult::from_unsorted_rows(3, Vec::new())
        );
    }

    #[test]
    fn digests_distinguish_different_results() {
        let a = AnalyticsOutput::WordCount(wc(&[(0, 1), (1, 2)]));
        let b = AnalyticsOutput::WordCount(wc(&[(0, 1), (1, 3)]));
        let c = AnalyticsOutput::WordCount(wc(&[(0, 1), (1, 2)]));
        assert_ne!(a.digest(), b.digest());
        assert_eq!(a.digest(), c.digest());
    }

    #[test]
    fn task_names() {
        assert_eq!(
            AnalyticsOutput::Sort(SortResult::default()).task_name(),
            "sort"
        );
        assert_eq!(
            AnalyticsOutput::SequenceCount(SequenceCountResult::default()).task_name(),
            "sequenceCount"
        );
    }
}
