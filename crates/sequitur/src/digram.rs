//! Digram index used by the Sequitur algorithm.
//!
//! A *digram* is a pair of adjacent symbols.  Sequitur's *digram uniqueness*
//! invariant states that no digram appears more than once in the grammar; the
//! index maps each digram to the arena node where its (single) indexed
//! occurrence starts.

use crate::fxhash::FxHashMap;

/// Internal working symbol of the Sequitur construction.
///
/// Terminals carry the token id produced by dictionary conversion (word ids
/// and splitter ids share one numeric space during construction); non-terminals
/// carry an internal rule slot index.
#[derive(Copy, Clone, PartialEq, Eq, Hash, Debug)]
pub enum Sym {
    /// A terminal token (word or splitter).
    Term(u32),
    /// A non-terminal referencing an internal rule slot.
    NonTerm(u32),
}

/// A digram: two adjacent working symbols.
pub type Digram = (Sym, Sym);

/// Index from digram to the arena node id of its recorded occurrence.
#[derive(Default, Debug)]
pub struct DigramIndex {
    map: FxHashMap<Digram, u32>,
}

impl DigramIndex {
    /// Creates an empty index.
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates an index pre-sized for roughly `n` digrams.
    pub fn with_capacity(n: usize) -> Self {
        Self {
            map: FxHashMap::with_capacity_and_hasher(n, Default::default()),
        }
    }

    /// Returns the node at which `d` is recorded, if any.
    #[inline]
    pub fn get(&self, d: &Digram) -> Option<u32> {
        self.map.get(d).copied()
    }

    /// Records digram `d` as occurring at `node`, overwriting any previous
    /// record.
    #[inline]
    pub fn insert(&mut self, d: Digram, node: u32) {
        self.map.insert(d, node);
    }

    /// Removes the record for `d` only if it currently points at `node`.
    ///
    /// This is the deletion discipline Sequitur requires: a node being
    /// unlinked must not clobber a record that has already been re-pointed at
    /// a different occurrence.
    #[inline]
    pub fn remove_if_at(&mut self, d: &Digram, node: u32) {
        if self.map.get(d) == Some(&node) {
            self.map.remove(d);
        }
    }

    /// Number of recorded digrams.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// Returns `true` if no digram is recorded.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    /// Iterates over all recorded digrams (used by invariant checks in tests).
    pub fn iter(&self) -> impl Iterator<Item = (&Digram, &u32)> {
        self.map.iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn d(a: u32, b: u32) -> Digram {
        (Sym::Term(a), Sym::Term(b))
    }

    #[test]
    fn insert_and_get() {
        let mut idx = DigramIndex::new();
        assert!(idx.is_empty());
        idx.insert(d(1, 2), 7);
        assert_eq!(idx.get(&d(1, 2)), Some(7));
        assert_eq!(idx.get(&d(2, 1)), None);
        assert_eq!(idx.len(), 1);
    }

    #[test]
    fn remove_if_at_only_removes_matching_node() {
        let mut idx = DigramIndex::new();
        idx.insert(d(1, 2), 7);
        idx.remove_if_at(&d(1, 2), 9);
        assert_eq!(idx.get(&d(1, 2)), Some(7), "non-matching node must not remove");
        idx.remove_if_at(&d(1, 2), 7);
        assert_eq!(idx.get(&d(1, 2)), None);
    }

    #[test]
    fn nonterminal_and_terminal_digrams_are_distinct() {
        let mut idx = DigramIndex::new();
        idx.insert((Sym::Term(5), Sym::Term(6)), 1);
        idx.insert((Sym::NonTerm(5), Sym::Term(6)), 2);
        assert_eq!(idx.get(&(Sym::Term(5), Sym::Term(6))), Some(1));
        assert_eq!(idx.get(&(Sym::NonTerm(5), Sym::Term(6))), Some(2));
    }

    #[test]
    fn overwrite_updates_position() {
        let mut idx = DigramIndex::new();
        idx.insert(d(3, 4), 1);
        idx.insert(d(3, 4), 2);
        assert_eq!(idx.get(&d(3, 4)), Some(2));
        assert_eq!(idx.len(), 1);
    }
}
