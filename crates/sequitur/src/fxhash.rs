//! A small, dependency-free implementation of the Fx hash function (the hash
//! used by rustc) plus convenience map/set aliases.
//!
//! TADOC spends a significant share of its time in hash-table operations
//! (digram index during compression, word tables during traversal), and the
//! default SipHash is a poor fit for small integer keys.  This is the pattern
//! recommended by the Rust performance guidelines: a fast, non-DoS-resistant
//! hash for internal integer-keyed tables.

use std::hash::{BuildHasherDefault, Hasher};

/// Multiplicative constant used by the Fx hash (64-bit variant).
const SEED: u64 = 0x51_7c_c1_b7_27_22_0a_95;

/// A fast, non-cryptographic hasher suitable for integer and short keys.
#[derive(Default, Clone)]
pub struct FxHasher {
    hash: u64,
}

impl FxHasher {
    #[inline]
    fn add_to_hash(&mut self, word: u64) {
        self.hash = (self.hash.rotate_left(5) ^ word).wrapping_mul(SEED);
    }
}

impl Hasher for FxHasher {
    #[inline]
    fn finish(&self) -> u64 {
        self.hash
    }

    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        let mut chunks = bytes.chunks_exact(8);
        for chunk in &mut chunks {
            let mut buf = [0u8; 8];
            buf.copy_from_slice(chunk);
            self.add_to_hash(u64::from_le_bytes(buf));
        }
        let rem = chunks.remainder();
        if !rem.is_empty() {
            let mut buf = [0u8; 8];
            buf[..rem.len()].copy_from_slice(rem);
            self.add_to_hash(u64::from_le_bytes(buf));
        }
    }

    #[inline]
    fn write_u8(&mut self, n: u8) {
        self.add_to_hash(n as u64);
    }

    #[inline]
    fn write_u32(&mut self, n: u32) {
        self.add_to_hash(n as u64);
    }

    #[inline]
    fn write_u64(&mut self, n: u64) {
        self.add_to_hash(n);
    }

    #[inline]
    fn write_usize(&mut self, n: usize) {
        self.add_to_hash(n as u64);
    }
}

/// `HashMap` keyed with the Fx hasher.
pub type FxHashMap<K, V> = std::collections::HashMap<K, V, BuildHasherDefault<FxHasher>>;
/// `HashSet` keyed with the Fx hasher.
pub type FxHashSet<T> = std::collections::HashSet<T, BuildHasherDefault<FxHasher>>;

/// Hashes a single `u64` with the Fx function; used by open-addressed tables
/// elsewhere in the workspace that want a raw hash value.
#[inline]
pub fn hash_u64(value: u64) -> u64 {
    let mut h = FxHasher::default();
    h.write_u64(value);
    h.finish()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic() {
        assert_eq!(hash_u64(12345), hash_u64(12345));
        assert_ne!(hash_u64(12345), hash_u64(12346));
    }

    #[test]
    fn map_behaves_like_std() {
        let mut m: FxHashMap<u32, u32> = FxHashMap::default();
        for i in 0..1000u32 {
            m.insert(i, i * 2);
        }
        assert_eq!(m.len(), 1000);
        for i in 0..1000u32 {
            assert_eq!(m[&i], i * 2);
        }
    }

    #[test]
    fn spreads_small_keys() {
        // Small consecutive keys should not all collide in the low bits.
        let mut low_bits = FxHashSet::default();
        for i in 0..64u64 {
            low_bits.insert(hash_u64(i) & 0xff);
        }
        assert!(low_bits.len() > 16, "hash should spread consecutive keys");
    }

    #[test]
    fn string_keys_work() {
        let mut m: FxHashMap<String, usize> = FxHashMap::default();
        m.insert("hello".to_string(), 1);
        m.insert("world".to_string(), 2);
        assert_eq!(m["hello"], 1);
        assert_eq!(m["world"], 2);
    }
}
