//! The rule DAG (Figure 1 (e) of the paper) and the per-rule metadata every
//! traversal needs: deduplicated child/parent edges with frequencies, local
//! word tables, DAG layers, and topological orders.
//!
//! Both the CPU baseline (`tadoc`) and the GPU implementation (`gtadoc`) build
//! their working structures from this representation, so the two systems are
//! guaranteed to interpret the compressed data identically.

use crate::fxhash::FxHashMap;
use crate::grammar::Grammar;
use crate::symbol::{RuleId, Symbol, WordId};

/// A directed acyclic graph over grammar rules.
#[derive(Debug, Clone)]
pub struct Dag {
    /// Number of rules (nodes), root included.
    pub num_rules: usize,
    /// For each rule, its distinct sub-rules with occurrence frequencies
    /// (`rule.subRules` in Algorithm 1).
    pub children: Vec<Vec<(RuleId, u32)>>,
    /// For each rule, its distinct parents with occurrence frequencies.
    pub parents: Vec<Vec<(RuleId, u32)>>,
    /// `rule.numInEdge`: number of distinct parent rules.
    pub num_in_edges: Vec<u32>,
    /// Number of distinct child rules (used by the bottom-up traversal).
    pub num_out_edges: Vec<u32>,
    /// Local word table of each rule: distinct terminal words that appear
    /// directly in the rule body, with their in-body frequencies.
    pub local_words: Vec<Vec<(WordId, u32)>>,
    /// Number of elements (symbols) in each rule body.
    pub rule_lengths: Vec<u32>,
    /// DAG layer of each rule (root = 0, children of root = 1, ...), taking the
    /// longest path from the root so dependencies always span layers upward.
    pub layers: Vec<u32>,
    /// Number of layers `k` in the DAG (max layer + 1).
    pub num_layers: usize,
    /// Rules ordered children-first (leaves before parents).
    pub topo_children_first: Vec<RuleId>,
}

impl Dag {
    /// Builds the DAG and all per-rule metadata from a grammar.
    pub fn from_grammar(grammar: &Grammar) -> Self {
        let n = grammar.num_rules();
        let mut children: Vec<Vec<(RuleId, u32)>> = vec![Vec::new(); n];
        let mut parents: Vec<Vec<(RuleId, u32)>> = vec![Vec::new(); n];
        let mut local_words: Vec<Vec<(WordId, u32)>> = vec![Vec::new(); n];
        let mut rule_lengths = vec![0u32; n];

        for (i, body) in grammar.rules.iter().enumerate() {
            rule_lengths[i] = body.len() as u32;
            let mut child_freq: FxHashMap<RuleId, u32> = FxHashMap::default();
            let mut word_freq: FxHashMap<WordId, u32> = FxHashMap::default();
            for sym in body {
                match *sym {
                    Symbol::Rule(r) => *child_freq.entry(r).or_insert(0) += 1,
                    Symbol::Word(w) => *word_freq.entry(w).or_insert(0) += 1,
                    Symbol::Splitter(_) => {}
                }
            }
            let mut kids: Vec<(RuleId, u32)> = child_freq.into_iter().collect();
            kids.sort_unstable();
            for &(c, f) in &kids {
                parents[c as usize].push((i as RuleId, f));
            }
            children[i] = kids;
            let mut words: Vec<(WordId, u32)> = word_freq.into_iter().collect();
            words.sort_unstable();
            local_words[i] = words;
        }

        let num_in_edges: Vec<u32> = parents.iter().map(|p| p.len() as u32).collect();
        let num_out_edges: Vec<u32> = children.iter().map(|c| c.len() as u32).collect();

        // Layers: longest path from root, computed over a parents-first order.
        let topo_children_first = grammar.topological_order_children_first();
        let mut layers = vec![0u32; n];
        for &r in topo_children_first.iter().rev() {
            let layer = layers[r as usize];
            for &(c, _) in &children[r as usize] {
                if layers[c as usize] < layer + 1 {
                    layers[c as usize] = layer + 1;
                }
            }
        }
        let num_layers = layers.iter().copied().max().unwrap_or(0) as usize + 1;

        Self {
            num_rules: n,
            children,
            parents,
            num_in_edges,
            num_out_edges,
            local_words,
            rule_lengths,
            layers,
            num_layers,
            topo_children_first,
        }
    }

    /// Rules directly referenced by the root ("level-2 nodes" in the paper).
    pub fn level2_nodes(&self) -> Vec<RuleId> {
        self.children[0].iter().map(|&(c, _)| c).collect()
    }

    /// Leaves: rules with no sub-rules.
    pub fn leaves(&self) -> Vec<RuleId> {
        (0..self.num_rules as u32)
            .filter(|&r| self.children[r as usize].is_empty())
            .collect()
    }

    /// Rules whose only parent is the root (starting set of the top-down
    /// traversal after mask initialization).
    pub fn root_only_rules(&self) -> Vec<RuleId> {
        (1..self.num_rules as u32)
            .filter(|&r| {
                let p = &self.parents[r as usize];
                p.len() == 1 && p[0].0 == 0
            })
            .collect()
    }

    /// Total number of (deduplicated) edges in the DAG.
    pub fn num_edges(&self) -> usize {
        self.children.iter().map(|c| c.len()).sum()
    }

    /// Average number of elements per rule body.
    pub fn avg_rule_length(&self) -> f64 {
        if self.num_rules == 0 {
            return 0.0;
        }
        self.rule_lengths.iter().map(|&l| l as u64).sum::<u64>() as f64 / self.num_rules as f64
    }

    /// Number of "dependent middle-layer nodes": rules that are neither the
    /// root nor leaves (the quantity the paper reports averaging 450,704 per
    /// file to motivate the parallelism challenge).
    pub fn middle_layer_nodes(&self) -> usize {
        (1..self.num_rules)
            .filter(|&r| !self.children[r].is_empty())
            .count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn paper_grammar() -> Grammar {
        Grammar::new(vec![
            vec![
                Symbol::Rule(1),
                Symbol::Rule(1),
                Symbol::Splitter(0),
                Symbol::Rule(2),
                Symbol::Word(1),
            ],
            vec![
                Symbol::Rule(2),
                Symbol::Word(3),
                Symbol::Rule(2),
                Symbol::Word(4),
            ],
            vec![Symbol::Word(1), Symbol::Word(2)],
        ])
    }

    #[test]
    fn children_with_frequencies() {
        let dag = Dag::from_grammar(&paper_grammar());
        assert_eq!(dag.children[0], vec![(1, 2), (2, 1)]);
        assert_eq!(dag.children[1], vec![(2, 2)]);
        assert!(dag.children[2].is_empty());
    }

    #[test]
    fn parents_mirror_children() {
        let dag = Dag::from_grammar(&paper_grammar());
        assert_eq!(dag.parents[1], vec![(0, 2)]);
        assert_eq!(dag.parents[2], vec![(0, 1), (1, 2)]);
        assert_eq!(dag.num_in_edges, vec![0, 1, 2]);
        assert_eq!(dag.num_out_edges, vec![2, 1, 0]);
    }

    #[test]
    fn local_word_tables() {
        let dag = Dag::from_grammar(&paper_grammar());
        assert_eq!(dag.local_words[0], vec![(1, 1)]);
        assert_eq!(dag.local_words[1], vec![(3, 1), (4, 1)]);
        assert_eq!(dag.local_words[2], vec![(1, 1), (2, 1)]);
    }

    #[test]
    fn layers_and_level2() {
        let dag = Dag::from_grammar(&paper_grammar());
        assert_eq!(dag.layers[0], 0);
        assert_eq!(dag.layers[1], 1);
        assert_eq!(dag.layers[2], 2, "R2 is reachable through R1, so layer 2");
        assert_eq!(dag.num_layers, 3);
        assert_eq!(dag.level2_nodes(), vec![1, 2]);
    }

    #[test]
    fn leaves_and_root_only() {
        let dag = Dag::from_grammar(&paper_grammar());
        assert_eq!(dag.leaves(), vec![2]);
        assert_eq!(dag.root_only_rules(), vec![1]);
        assert_eq!(dag.middle_layer_nodes(), 1);
    }

    #[test]
    fn edge_and_length_statistics() {
        let dag = Dag::from_grammar(&paper_grammar());
        assert_eq!(dag.num_edges(), 3);
        assert_eq!(dag.rule_lengths, vec![5, 4, 2]);
        assert!((dag.avg_rule_length() - 11.0 / 3.0).abs() < 1e-9);
    }

    #[test]
    fn single_rule_grammar() {
        let g = Grammar::new(vec![vec![Symbol::Word(0), Symbol::Word(0)]]);
        let dag = Dag::from_grammar(&g);
        assert_eq!(dag.num_rules, 1);
        assert_eq!(dag.num_layers, 1);
        assert_eq!(dag.leaves(), vec![0]);
        assert_eq!(dag.local_words[0], vec![(0, 2)]);
    }
}
