//! End-to-end TADOC compression: documents → dictionary conversion → splitter
//! insertion → Sequitur → [`TadocArchive`].

use crate::archive::{FileMeta, TadocArchive};
use crate::dictionary::Dictionary;
use crate::sequitur_impl::Sequitur;
use crate::symbol::MAX_PAYLOAD;
use crate::tokenizer::{tokenize_into, TokenizerOptions};
use crate::{Result, WordId};
use std::path::Path;

/// Options controlling compression.
#[derive(Debug, Clone, Copy, Default)]
pub struct CompressOptions {
    /// Tokenizer behaviour (case folding, punctuation stripping).
    pub tokenizer: TokenizerOptions,
}

/// Compresses an in-memory corpus of `(file name, file content)` pairs.
pub fn compress_corpus(files: &[(String, String)], opts: CompressOptions) -> TadocArchive {
    let mut dict = Dictionary::new();
    let mut token_files = Vec::with_capacity(files.len());
    let mut names = Vec::with_capacity(files.len());
    let mut byte_sizes = Vec::with_capacity(files.len());
    for (name, content) in files {
        token_files.push(tokenize_into(content, &mut dict, opts.tokenizer));
        names.push(name.clone());
        byte_sizes.push(content.len() as u64);
    }
    compress_token_files(dict, token_files, names, byte_sizes)
}

/// Compresses files already converted to word-id streams (the path used by the
/// synthetic dataset generators, which produce token ids directly).
pub fn compress_token_files(
    dictionary: Dictionary,
    token_files: Vec<Vec<WordId>>,
    names: Vec<String>,
    original_byte_sizes: Vec<u64>,
) -> TadocArchive {
    assert_eq!(token_files.len(), names.len());
    let vocab = dictionary.len() as u32;
    assert!(
        vocab as u64 + token_files.len() as u64 <= MAX_PAYLOAD as u64,
        "vocabulary plus splitter count exceeds the 30-bit symbol payload"
    );

    let total_tokens: usize = token_files.iter().map(|f| f.len()).sum();
    let mut seq = Sequitur::with_capacity(total_tokens + token_files.len());
    let mut metas = Vec::with_capacity(token_files.len());
    let n_files = token_files.len();
    for (i, tokens) in token_files.iter().enumerate() {
        seq.push_all(tokens);
        // A unique splitter terminates every file except the last, exactly as
        // in Figure 1 of the paper (R0: ... spt1 ...).
        if i + 1 < n_files {
            seq.push(vocab + i as u32);
        }
        let byte_size = original_byte_sizes.get(i).copied().unwrap_or(0);
        metas.push(FileMeta {
            name: names[i].clone(),
            token_count: tokens.len() as u64,
            byte_size,
        });
    }
    let grammar = seq.into_grammar(vocab);
    TadocArchive {
        dictionary,
        grammar,
        files: metas,
    }
}

/// Reads and compresses files from disk.
pub fn compress_files<P: AsRef<Path>>(paths: &[P], opts: CompressOptions) -> Result<TadocArchive> {
    let mut corpus = Vec::with_capacity(paths.len());
    for p in paths {
        let p = p.as_ref();
        let content = std::fs::read_to_string(p)?;
        let name = p
            .file_name()
            .map(|n| n.to_string_lossy().into_owned())
            .unwrap_or_else(|| p.display().to_string());
        corpus.push((name, content));
    }
    Ok(compress_corpus(&corpus, opts))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_corpus() -> Vec<(String, String)> {
        vec![
            (
                "fileA".to_string(),
                "w1 w2 w3 w1 w2 w4 w1 w2 w3 w1 w2 w4".to_string(),
            ),
            ("fileB".to_string(), "w1 w2 w1".to_string()),
        ]
    }

    #[test]
    fn roundtrip_through_compression() {
        let archive = compress_corpus(&sample_corpus(), CompressOptions::default());
        assert_eq!(archive.files.len(), 2);
        let decompressed = archive.decompress_files();
        assert_eq!(decompressed[0].1, "w1 w2 w3 w1 w2 w4 w1 w2 w3 w1 w2 w4");
        assert_eq!(decompressed[1].1, "w1 w2 w1");
        assert_eq!(decompressed[0].0, "fileA");
    }

    #[test]
    fn file_metadata_is_preserved() {
        let archive = compress_corpus(&sample_corpus(), CompressOptions::default());
        assert_eq!(archive.files[0].token_count, 12);
        assert_eq!(archive.files[1].token_count, 3);
        assert_eq!(archive.files[0].name, "fileA");
        assert!(archive.files[0].byte_size > 0);
    }

    #[test]
    fn grammar_validates_and_shares_rules() {
        let archive = compress_corpus(&sample_corpus(), CompressOptions::default());
        archive.grammar.validate().expect("grammar must be valid");
        assert!(
            archive.grammar.num_rules() >= 2,
            "redundant corpus should produce shared rules"
        );
        assert_eq!(archive.grammar.num_files(), 2);
    }

    #[test]
    fn single_file_corpus() {
        let corpus = vec![("only".to_string(), "a b a b a b".to_string())];
        let archive = compress_corpus(&corpus, CompressOptions::default());
        assert_eq!(archive.grammar.num_files(), 1);
        assert_eq!(archive.decompress_files()[0].1, "a b a b a b");
    }

    #[test]
    fn empty_files_are_handled() {
        let corpus = vec![
            ("empty".to_string(), "".to_string()),
            ("nonempty".to_string(), "x y".to_string()),
        ];
        let archive = compress_corpus(&corpus, CompressOptions::default());
        assert_eq!(archive.files.len(), 2);
        let files = archive.grammar.expand_files();
        assert_eq!(files.len(), 2);
        assert!(files[0].is_empty());
        assert_eq!(files[1].len(), 2);
    }

    #[test]
    fn many_files_share_vocabulary() {
        let corpus: Vec<(String, String)> = (0..20)
            .map(|i| (format!("f{i}"), "common words repeated across files".to_string()))
            .collect();
        let archive = compress_corpus(&corpus, CompressOptions::default());
        assert_eq!(archive.dictionary.len(), 5);
        assert_eq!(archive.grammar.num_files(), 20);
        // Identical files must compress extremely well.
        assert!(archive.grammar.total_elements() < 20 * 5);
    }

    #[test]
    fn compress_token_files_direct_path() {
        let mut dict = Dictionary::new();
        for w in ["a", "b", "c"] {
            dict.intern(w);
        }
        let archive = compress_token_files(
            dict,
            vec![vec![0, 1, 2, 0, 1, 2], vec![0, 1, 0, 1]],
            vec!["t0".into(), "t1".into()],
            vec![11, 7],
        );
        let files = archive.grammar.expand_files();
        assert_eq!(files[0], vec![0, 1, 2, 0, 1, 2]);
        assert_eq!(files[1], vec![0, 1, 0, 1]);
        assert_eq!(archive.files[1].byte_size, 7);
    }
}
