//! # sequitur
//!
//! Grammar compression substrate for the G-TADOC reproduction.
//!
//! This crate implements, from scratch:
//!
//! * the [Sequitur](https://en.wikipedia.org/wiki/Sequitur_algorithm) on-line
//!   grammar inference algorithm (digram uniqueness + rule utility), the core
//!   compression algorithm TADOC extends;
//! * dictionary conversion (word ⇄ integer encoding) and whitespace
//!   tokenization;
//! * file-boundary *splitter* symbols so multiple files share one grammar;
//! * the TADOC compressed archive ([`TadocArchive`]): dictionary + context-free
//!   grammar + file metadata, with a self-contained binary serialization;
//! * the rule DAG ([`dag::Dag`]) used by every analytics traversal.
//!
//! The produced [`Grammar`] is exactly the structure described in Figure 1 of
//! the paper: rule `R0` (the root) spells out the file sequence with splitter
//! symbols at file boundaries, and every other rule represents a repeated
//! fragment shared by the files.

#![forbid(unsafe_code)]

pub mod archive;
pub mod compress;
pub mod dag;
pub mod dictionary;
pub mod digram;
pub mod fxhash;
pub mod grammar;
pub mod sequitur_impl;
pub mod stats;
pub mod symbol;
pub mod tokenizer;

pub use archive::TadocArchive;
pub use compress::{compress_corpus, compress_files, CompressOptions};
pub use dag::Dag;
pub use dictionary::Dictionary;
pub use grammar::Grammar;
pub use stats::ArchiveStats;
pub use symbol::{RuleId, Symbol, WordId};

/// Convenience result alias used across the crate.
pub type Result<T> = std::result::Result<T, Error>;

/// Errors produced while compressing or decoding archives.
#[derive(Debug)]
pub enum Error {
    /// The binary archive is truncated or malformed.
    Corrupt(String),
    /// An I/O error while reading input files.
    Io(std::io::Error),
    /// The grammar references a rule or word id that does not exist.
    InvalidReference(String),
}

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Error::Corrupt(msg) => write!(f, "corrupt archive: {msg}"),
            Error::Io(e) => write!(f, "i/o error: {e}"),
            Error::InvalidReference(msg) => write!(f, "invalid reference: {msg}"),
        }
    }
}

impl std::error::Error for Error {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            Error::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for Error {
    fn from(e: std::io::Error) -> Self {
        Error::Io(e)
    }
}
