//! The context-free grammar produced by TADOC compression.
//!
//! Rule 0 is always the root (`R0` in the paper).  The root's body is the
//! concatenation of all input files with a unique [`Symbol::Splitter`] between
//! consecutive files.  Every other rule is a repeated fragment referenced at
//! least twice.

use crate::symbol::{RuleId, Symbol, WordId};
use crate::{Error, Result};

/// A TADOC context-free grammar (Figure 1 (d) of the paper).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Grammar {
    /// Rule bodies; index 0 is the root.
    pub rules: Vec<Vec<Symbol>>,
}

impl Grammar {
    /// Creates a grammar from rule bodies. Rule 0 must be the root.
    pub fn new(rules: Vec<Vec<Symbol>>) -> Self {
        Self { rules }
    }

    /// The root rule body.
    pub fn root(&self) -> &[Symbol] {
        &self.rules[0]
    }

    /// Number of rules including the root.
    pub fn num_rules(&self) -> usize {
        self.rules.len()
    }

    /// Total number of elements across all rule bodies (the compressed size in
    /// symbols).
    pub fn total_elements(&self) -> usize {
        self.rules.iter().map(|r| r.len()).sum()
    }

    /// Number of files encoded in the root (= splitter count + 1, or 0 for an
    /// empty grammar).
    pub fn num_files(&self) -> usize {
        if self.rules.is_empty() || self.root().is_empty() {
            return 0;
        }
        1 + self.root().iter().filter(|s| s.is_splitter()).count()
    }

    /// Expands the root into the flat terminal stream (words and splitters, in
    /// original order).  Used for round-trip verification.
    pub fn expand_root_tokens(&self) -> Vec<Symbol> {
        let mut out = Vec::new();
        self.expand_into(0, &mut out);
        out
    }

    fn expand_into(&self, rule: RuleId, out: &mut Vec<Symbol>) {
        for &sym in &self.rules[rule as usize] {
            match sym {
                Symbol::Rule(r) => self.expand_into(r, out),
                other => out.push(other),
            }
        }
    }

    /// Fully expands a single rule into the word ids it covers (splitters never
    /// occur below the root by construction, and are skipped if present).
    pub fn expand_rule_words(&self, rule: RuleId) -> Vec<WordId> {
        let mut out = Vec::new();
        self.expand_rule_words_into(rule, &mut out);
        out
    }

    fn expand_rule_words_into(&self, rule: RuleId, out: &mut Vec<WordId>) {
        for &sym in &self.rules[rule as usize] {
            match sym {
                Symbol::Word(w) => out.push(w),
                Symbol::Rule(r) => self.expand_rule_words_into(r, out),
                Symbol::Splitter(_) => {}
            }
        }
    }

    /// Expands the grammar into per-file word-id streams (the decompressed
    /// corpus).
    pub fn expand_files(&self) -> Vec<Vec<WordId>> {
        let flat = self.expand_root_tokens();
        let mut files = Vec::new();
        let mut cur = Vec::new();
        for sym in flat {
            match sym {
                Symbol::Word(w) => cur.push(w),
                Symbol::Splitter(_) => {
                    files.push(std::mem::take(&mut cur));
                }
                Symbol::Rule(_) => unreachable!("expand_root_tokens yields terminals only"),
            }
        }
        files.push(cur);
        files
    }

    /// Counts how many times each rule is referenced (root gets 0).
    pub fn rule_use_counts(&self) -> Vec<u32> {
        let mut counts = vec![0u32; self.rules.len()];
        for body in &self.rules {
            for sym in body {
                if let Symbol::Rule(r) = sym {
                    counts[*r as usize] += 1;
                }
            }
        }
        counts
    }

    /// The number of expanded words each rule covers (memoized bottom-up, no
    /// recursion on the expanded text).
    pub fn rule_expanded_lengths(&self) -> Vec<u64> {
        let order = self.topological_order_children_first();
        let mut len = vec![0u64; self.rules.len()];
        for r in order {
            let mut total = 0u64;
            for sym in &self.rules[r as usize] {
                match sym {
                    Symbol::Word(_) => total += 1,
                    Symbol::Rule(c) => total += len[*c as usize],
                    Symbol::Splitter(_) => {}
                }
            }
            len[r as usize] = total;
        }
        len
    }

    /// Topological order of rules with children before parents (leaves first).
    pub fn topological_order_children_first(&self) -> Vec<RuleId> {
        let n = self.rules.len();
        let mut state = vec![0u8; n]; // 0 = unvisited, 1 = in stack, 2 = done
        let mut order = Vec::with_capacity(n);
        // Iterative DFS to avoid deep recursion on pathological grammars.
        for start in 0..n as u32 {
            if state[start as usize] != 0 {
                continue;
            }
            let mut stack: Vec<(u32, usize)> = vec![(start, 0)];
            state[start as usize] = 1;
            while let Some(&(rule, idx)) = stack.last() {
                let body = &self.rules[rule as usize];
                let mut next_child = None;
                let mut new_idx = idx;
                while new_idx < body.len() {
                    let sym = body[new_idx];
                    new_idx += 1;
                    if let Symbol::Rule(c) = sym {
                        if state[c as usize] == 0 {
                            next_child = Some(c);
                            break;
                        }
                    }
                }
                stack.last_mut().expect("stack is non-empty").1 = new_idx;
                if let Some(c) = next_child {
                    state[c as usize] = 1;
                    stack.push((c, 0));
                } else if new_idx >= body.len() {
                    state[rule as usize] = 2;
                    order.push(rule);
                    stack.pop();
                }
            }
        }
        order
    }

    /// Validates structural well-formedness: every referenced rule exists,
    /// splitters only occur in the root, and the rule graph is acyclic.
    pub fn validate(&self) -> Result<()> {
        if self.rules.is_empty() {
            return Err(Error::Corrupt("grammar has no rules".into()));
        }
        let n = self.rules.len() as u32;
        for (i, body) in self.rules.iter().enumerate() {
            for sym in body {
                match *sym {
                    Symbol::Rule(r) if r >= n => {
                        return Err(Error::InvalidReference(format!(
                            "rule {i} references nonexistent rule {r}"
                        )));
                    }
                    Symbol::Splitter(_) if i != 0 => {
                        return Err(Error::InvalidReference(format!(
                            "splitter occurs in non-root rule {i}"
                        )));
                    }
                    _ => {}
                }
            }
        }
        // Cycle detection via the children-first order: every rule must appear.
        let order = self.topological_order_children_first();
        if order.len() != self.rules.len() {
            return Err(Error::Corrupt("rule graph contains a cycle".into()));
        }
        // A cycle through the DFS would revisit an in-stack node; detect by
        // checking that no rule (transitively) contains itself.
        let mut reachable: Vec<std::collections::BTreeSet<u32>> =
            vec![Default::default(); self.rules.len()];
        for &r in &order {
            let mut set = std::collections::BTreeSet::new();
            for sym in &self.rules[r as usize] {
                if let Symbol::Rule(c) = sym {
                    set.insert(*c);
                    let child_set = reachable[*c as usize].clone();
                    set.extend(child_set);
                }
            }
            if set.contains(&r) {
                return Err(Error::Corrupt(format!("rule {r} is part of a cycle")));
            }
            reachable[r as usize] = set;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The grammar of Figure 1 in the paper:
    /// R0: R1 R1 spt1 R2 w1, R1: R2 w3 R2 w4, R2: w1 w2
    fn paper_grammar() -> Grammar {
        Grammar::new(vec![
            vec![
                Symbol::Rule(1),
                Symbol::Rule(1),
                Symbol::Splitter(0),
                Symbol::Rule(2),
                Symbol::Word(1),
            ],
            vec![
                Symbol::Rule(2),
                Symbol::Word(3),
                Symbol::Rule(2),
                Symbol::Word(4),
            ],
            vec![Symbol::Word(1), Symbol::Word(2)],
        ])
    }

    #[test]
    fn paper_example_expansion() {
        let g = paper_grammar();
        let files = g.expand_files();
        assert_eq!(files.len(), 2);
        // fileA: w1 w2 w3 w1 w2 w4 w1 w2 w3 w1 w2 w4
        assert_eq!(files[0], vec![1, 2, 3, 1, 2, 4, 1, 2, 3, 1, 2, 4]);
        // fileB: w1 w2 w1
        assert_eq!(files[1], vec![1, 2, 1]);
    }

    #[test]
    fn paper_example_counts() {
        let g = paper_grammar();
        assert_eq!(g.num_rules(), 3);
        assert_eq!(g.num_files(), 2);
        assert_eq!(g.total_elements(), 11);
        let counts = g.rule_use_counts();
        assert_eq!(counts, vec![0, 2, 3]);
    }

    #[test]
    fn expanded_lengths() {
        let g = paper_grammar();
        let lens = g.rule_expanded_lengths();
        assert_eq!(lens[2], 2); // R2 = w1 w2
        assert_eq!(lens[1], 6); // R1 = R2 w3 R2 w4
        assert_eq!(lens[0], 15); // 12 + 3 words, splitter not counted
    }

    #[test]
    fn topological_order_children_first() {
        let g = paper_grammar();
        let order = g.topological_order_children_first();
        let pos = |r: u32| order.iter().position(|&x| x == r).unwrap();
        assert!(pos(2) < pos(1));
        assert!(pos(1) < pos(0));
        assert_eq!(order.len(), 3);
    }

    #[test]
    fn validate_accepts_paper_grammar() {
        assert!(paper_grammar().validate().is_ok());
    }

    #[test]
    fn validate_rejects_dangling_rule() {
        let g = Grammar::new(vec![vec![Symbol::Rule(5)]]);
        assert!(g.validate().is_err());
    }

    #[test]
    fn validate_rejects_splitter_below_root() {
        let g = Grammar::new(vec![vec![Symbol::Rule(1)], vec![Symbol::Splitter(0)]]);
        assert!(g.validate().is_err());
    }

    #[test]
    fn validate_rejects_cycle() {
        let g = Grammar::new(vec![
            vec![Symbol::Rule(1)],
            vec![Symbol::Rule(2)],
            vec![Symbol::Rule(1)],
        ]);
        assert!(g.validate().is_err());
    }

    #[test]
    fn expand_rule_words_matches_manual_expansion() {
        let g = paper_grammar();
        assert_eq!(g.expand_rule_words(2), vec![1, 2]);
        assert_eq!(g.expand_rule_words(1), vec![1, 2, 3, 1, 2, 4]);
    }

    #[test]
    fn single_file_has_no_splitter() {
        let g = Grammar::new(vec![vec![Symbol::Word(0), Symbol::Word(1)]]);
        assert_eq!(g.num_files(), 1);
        assert_eq!(g.expand_files(), vec![vec![0, 1]]);
    }
}
