//! The Sequitur grammar-inference algorithm.
//!
//! Sequitur reads a token stream one symbol at a time and maintains a
//! context-free grammar obeying two invariants:
//!
//! * **digram uniqueness** — no pair of adjacent symbols appears more than
//!   once in the grammar; a repeated digram is replaced by a non-terminal;
//! * **rule utility** — every rule (other than the root) is referenced at
//!   least twice; a rule whose reference count drops to one is inlined.
//!
//! The implementation uses an index-based doubly-linked arena of symbol nodes
//! with one *guard* node per rule (the circular-list trick of the reference
//! implementation), and routes **every** `next`-pointer update through
//! `Sequitur::link`, which first un-registers the digram starting at the
//! left node.  That single discipline keeps the digram index consistent under
//! all splicing operations.

use crate::digram::{Digram, DigramIndex, Sym};
use crate::grammar::Grammar;
use crate::symbol::Symbol;

const NIL: u32 = u32::MAX;

#[derive(Debug, Clone, Copy)]
struct Node {
    sym: Sym,
    prev: u32,
    next: u32,
    is_guard: bool,
}

#[derive(Debug, Clone, Copy)]
struct RuleSlot {
    guard: u32,
    refcount: u32,
    alive: bool,
}

/// Incremental Sequitur grammar builder over `u32` terminal tokens.
///
/// Word ids and splitter ids share one terminal space here; the caller maps
/// them back to [`Symbol`]s via the `vocab_size` argument of
/// [`Sequitur::into_grammar`].
pub struct Sequitur {
    nodes: Vec<Node>,
    free_nodes: Vec<u32>,
    rules: Vec<RuleSlot>,
    digrams: DigramIndex,
    tokens_pushed: u64,
}

impl Default for Sequitur {
    fn default() -> Self {
        Self::new()
    }
}

impl Sequitur {
    /// Creates a builder containing only the empty root rule.
    pub fn new() -> Self {
        let mut s = Self {
            nodes: Vec::with_capacity(1024),
            free_nodes: Vec::new(),
            rules: Vec::new(),
            digrams: DigramIndex::with_capacity(1024),
            tokens_pushed: 0,
        };
        s.new_rule(); // rule 0: root
        s
    }

    /// Creates a builder with node capacity pre-sized for `n` input tokens.
    pub fn with_capacity(n: usize) -> Self {
        let mut s = Self {
            nodes: Vec::with_capacity(n + 16),
            free_nodes: Vec::new(),
            rules: Vec::with_capacity(n / 8 + 4),
            digrams: DigramIndex::with_capacity(n),
            tokens_pushed: 0,
        };
        s.new_rule();
        s
    }

    /// Number of terminal tokens pushed so far.
    pub fn tokens_pushed(&self) -> u64 {
        self.tokens_pushed
    }

    /// Number of live rules (including the root).
    pub fn live_rules(&self) -> usize {
        self.rules.iter().filter(|r| r.alive).count()
    }

    // ------------------------------------------------------------------
    // arena helpers
    // ------------------------------------------------------------------

    fn new_node(&mut self, sym: Sym, is_guard: bool) -> u32 {
        let node = Node {
            sym,
            prev: NIL,
            next: NIL,
            is_guard,
        };
        if let Some(id) = self.free_nodes.pop() {
            self.nodes[id as usize] = node;
            id
        } else {
            let id = self.nodes.len() as u32;
            self.nodes.push(node);
            id
        }
    }

    fn free_node(&mut self, id: u32) {
        self.nodes[id as usize].prev = NIL;
        self.nodes[id as usize].next = NIL;
        self.free_nodes.push(id);
    }

    fn new_rule(&mut self) -> u32 {
        let id = self.rules.len() as u32;
        let guard = self.new_node(Sym::NonTerm(id), true);
        // Circular: an empty rule's guard points at itself.
        self.nodes[guard as usize].prev = guard;
        self.nodes[guard as usize].next = guard;
        self.rules.push(RuleSlot {
            guard,
            refcount: 0,
            alive: true,
        });
        id
    }

    #[inline]
    fn sym(&self, n: u32) -> Sym {
        self.nodes[n as usize].sym
    }

    #[inline]
    fn next(&self, n: u32) -> u32 {
        self.nodes[n as usize].next
    }

    #[inline]
    fn prev(&self, n: u32) -> u32 {
        self.nodes[n as usize].prev
    }

    #[inline]
    fn is_guard(&self, n: u32) -> bool {
        self.nodes[n as usize].is_guard
    }

    /// The digram starting at `n`, or `None` if it would span a guard.
    fn digram_at(&self, n: u32) -> Option<Digram> {
        if self.is_guard(n) {
            return None;
        }
        let m = self.next(n);
        if m == NIL || self.is_guard(m) {
            return None;
        }
        Some((self.sym(n), self.sym(m)))
    }

    /// Removes the digram-index record starting at `n` (if it points at `n`).
    fn unindex(&mut self, n: u32) {
        if let Some(d) = self.digram_at(n) {
            self.digrams.remove_if_at(&d, n);
        }
    }

    /// Links `right` directly after `left`, first un-registering the digram
    /// that used to start at `left`.
    fn link(&mut self, left: u32, right: u32) {
        if self.nodes[left as usize].next != NIL {
            self.unindex(left);
        }
        self.nodes[left as usize].next = right;
        self.nodes[right as usize].prev = left;
    }

    // ------------------------------------------------------------------
    // main algorithm
    // ------------------------------------------------------------------

    /// Appends one terminal token to the root rule, restoring both Sequitur
    /// invariants.
    pub fn push(&mut self, token: u32) {
        self.tokens_pushed += 1;
        let node = self.new_node(Sym::Term(token), false);
        let guard = self.rules[0].guard;
        let last = self.prev(guard);
        self.link(node, guard);
        self.link(last, node);
        if !self.is_guard(last) {
            self.check(last);
        }
    }

    /// Appends every token of `tokens`.
    pub fn push_all(&mut self, tokens: &[u32]) {
        for &t in tokens {
            self.push(t);
        }
    }

    /// Checks the digram starting at `n`; returns `true` if a substitution
    /// happened (meaning `n` may no longer be in the grammar).
    fn check(&mut self, n: u32) -> bool {
        let Some(d) = self.digram_at(n) else {
            return false;
        };
        match self.digrams.get(&d) {
            None => {
                self.digrams.insert(d, n);
                false
            }
            Some(m) if m == n => false,
            Some(m) => {
                // Overlapping occurrences (e.g. "aaa") are not replaced.
                if self.next(m) == n || self.next(n) == m {
                    return false;
                }
                self.handle_match(n, m, d);
                true
            }
        }
    }

    /// Handles a repeated digram `d` occurring at `n` (new) and `m` (indexed).
    fn handle_match(&mut self, n: u32, m: u32, d: Digram) {
        let m_prev = self.prev(m);
        let m_next = self.next(m);
        let existing_rule = if self.is_guard(m_prev) && self.is_guard(self.next(m_next)) {
            // `m` is the complete body of a rule: reuse that rule.
            match self.sym(m_prev) {
                Sym::NonTerm(r) => Some(r),
                Sym::Term(_) => unreachable!("guard nodes always carry a rule reference"),
            }
        } else {
            None
        };

        let r = match existing_rule {
            Some(r) => {
                self.substitute(n, r);
                r
            }
            None => {
                // Create a new rule whose body is the digram, then replace
                // both occurrences with it.
                let r = self.new_rule();
                let guard = self.rules[r as usize].guard;
                let a = self.new_node(d.0, false);
                let b = self.new_node(d.1, false);
                self.link(guard, a);
                self.link(a, b);
                self.link(b, guard);
                if let Sym::NonTerm(q) = d.0 {
                    self.rules[q as usize].refcount += 1;
                }
                if let Sym::NonTerm(q) = d.1 {
                    self.rules[q as usize].refcount += 1;
                }
                self.substitute(m, r);
                self.substitute(n, r);
                self.digrams.insert(d, a);
                r
            }
        };

        // Rule utility: if either body symbol of `r` is a rule now referenced
        // only once, inline it.
        let guard = self.rules[r as usize].guard;
        let first = self.next(guard);
        let second = if first != guard { self.next(first) } else { guard };
        for s in [first, second] {
            if s == guard || self.is_guard(s) {
                continue;
            }
            if let Sym::NonTerm(q) = self.sym(s) {
                if self.rules[q as usize].alive && self.rules[q as usize].refcount == 1 {
                    self.expand(s, q);
                }
            }
        }
    }

    /// Replaces the two-node digram starting at `n` with a single reference to
    /// rule `r`.
    fn substitute(&mut self, n: u32, r: u32) {
        let prev = self.prev(n);
        let second = self.next(n);
        let after = self.next(second);

        // Un-register every digram that involves the nodes being rewritten.
        self.unindex(prev);
        self.unindex(n);
        self.unindex(second);

        // Release references held by the replaced symbols.
        for id in [n, second] {
            if let Sym::NonTerm(q) = self.sym(id) {
                self.rules[q as usize].refcount -= 1;
            }
        }

        // Reuse node `n` as the non-terminal reference; drop node `second`.
        self.nodes[n as usize].sym = Sym::NonTerm(r);
        self.rules[r as usize].refcount += 1;
        self.link(n, after);
        self.free_node(second);

        // Newly adjacent digrams must be re-checked.  Mirroring the reference
        // implementation: if checking (prev, n) triggered a substitution, node
        // `n` no longer exists in its old position and the second check is the
        // responsibility of that substitution.
        if !self.check(prev) {
            self.check(n);
        }
    }

    /// Inlines rule `q` at its sole remaining use site `use_site`.
    fn expand(&mut self, use_site: u32, q: u32) {
        let prev = self.prev(use_site);
        let next = self.next(use_site);
        let guard = self.rules[q as usize].guard;
        let first = self.next(guard);
        let last = self.prev(guard);

        self.unindex(use_site);

        // Splice the body of `q` in place of the use site.
        self.link(prev, first);
        self.link(last, next);
        self.free_node(use_site);

        // Retire the rule.
        self.rules[q as usize].alive = false;
        self.rules[q as usize].refcount = 0;
        self.free_node(guard);

        // Register the digram formed at the right splice point so it is not
        // forgotten (the left splice point is re-discovered on later matches).
        if let Some(d) = self.digram_at(last) {
            if self.digrams.get(&d).is_none() {
                self.digrams.insert(d, last);
            }
        }
    }

    // ------------------------------------------------------------------
    // extraction
    // ------------------------------------------------------------------

    /// Extracts the grammar, mapping terminals below `vocab_size` to
    /// [`Symbol::Word`] and terminals at or above it to [`Symbol::Splitter`]
    /// (`token - vocab_size`).  Live internal rules are renumbered densely
    /// with the root as rule 0.
    pub fn into_grammar(self, vocab_size: u32) -> Grammar {
        let mut remap = vec![u32::MAX; self.rules.len()];
        let mut next_id = 0u32;
        for (i, slot) in self.rules.iter().enumerate() {
            if slot.alive {
                remap[i] = next_id;
                next_id += 1;
            }
        }

        let mut rules: Vec<Vec<Symbol>> = Vec::with_capacity(next_id as usize);
        for (i, slot) in self.rules.iter().enumerate() {
            if !slot.alive {
                continue;
            }
            let mut body = Vec::new();
            let guard = slot.guard;
            let mut cur = self.nodes[guard as usize].next;
            while cur != guard {
                let node = &self.nodes[cur as usize];
                let sym = match node.sym {
                    Sym::Term(t) if t < vocab_size => Symbol::Word(t),
                    Sym::Term(t) => Symbol::Splitter(t - vocab_size),
                    Sym::NonTerm(r) => {
                        debug_assert!(self.rules[r as usize].alive, "reference to dead rule");
                        Symbol::Rule(remap[r as usize])
                    }
                };
                body.push(sym);
                cur = node.next;
            }
            debug_assert_eq!(remap[i] as usize, rules.len());
            rules.push(body);
        }
        Grammar { rules }
    }

    // ------------------------------------------------------------------
    // invariant inspection (used by tests)
    // ------------------------------------------------------------------

    /// Counts how many times each digram appears across all live rules.
    /// Under digram uniqueness every non-overlapping digram appears at most
    /// twice transiently and at most once at rest.
    pub fn digram_occurrence_histogram(&self) -> std::collections::HashMap<Digram, usize> {
        let mut hist = std::collections::HashMap::new();
        for slot in &self.rules {
            if !slot.alive {
                continue;
            }
            let guard = slot.guard;
            let mut cur = self.nodes[guard as usize].next;
            while cur != guard {
                if let Some(d) = self.digram_at(cur) {
                    *hist.entry(d).or_insert(0) += 1;
                }
                cur = self.next(cur);
            }
        }
        hist
    }

    /// Returns the reference count of every live non-root rule.
    pub fn non_root_refcounts(&self) -> Vec<u32> {
        self.rules
            .iter()
            .enumerate()
            .filter(|(i, s)| *i != 0 && s.alive)
            .map(|(_, s)| s.refcount)
            .collect()
    }
}

/// Runs Sequitur over a complete token stream and extracts the grammar.
pub fn build_grammar(tokens: &[u32], vocab_size: u32) -> Grammar {
    let mut s = Sequitur::with_capacity(tokens.len());
    s.push_all(tokens);
    s.into_grammar(vocab_size)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip(tokens: &[u32]) -> Grammar {
        let vocab = tokens.iter().copied().max().map_or(1, |m| m + 1);
        let g = build_grammar(tokens, vocab);
        let expanded = g.expand_root_tokens();
        let expected: Vec<Symbol> = tokens.iter().map(|&t| Symbol::Word(t)).collect();
        assert_eq!(expanded, expected, "grammar must expand back to the input");
        g
    }

    #[test]
    fn empty_input() {
        let g = build_grammar(&[], 0);
        assert_eq!(g.rules.len(), 1);
        assert!(g.rules[0].is_empty());
    }

    #[test]
    fn single_token() {
        let g = roundtrip(&[7]);
        assert_eq!(g.rules.len(), 1);
    }

    #[test]
    fn paper_example_structure() {
        // fileA: w1 w2 w3 w1 w2 w4 w1 w2 w3 w1 w2 w4 (as in Figure 1, one file)
        let tokens = [1, 2, 3, 1, 2, 4, 1, 2, 3, 1, 2, 4];
        let g = roundtrip(&tokens);
        // Sequitur must find the repeated structure: at least one shared rule.
        assert!(g.rules.len() >= 2, "repetition should create rules");
    }

    #[test]
    fn repeated_pair_creates_rule() {
        let g = roundtrip(&[1, 2, 9, 1, 2]);
        assert_eq!(g.rules.len(), 2);
        assert_eq!(g.rules[1].len(), 2);
    }

    #[test]
    fn run_of_identical_tokens_roundtrips() {
        roundtrip(&[5, 5, 5, 5, 5, 5, 5, 5, 5]);
    }

    #[test]
    fn nested_repetition() {
        // abab abab -> hierarchy of rules
        let g = roundtrip(&[1, 2, 1, 2, 1, 2, 1, 2]);
        assert!(g.rules.len() >= 2);
    }

    #[test]
    fn alternating_long_sequence_roundtrips() {
        let tokens: Vec<u32> = (0..200).map(|i| (i % 2) as u32).collect();
        roundtrip(&tokens);
    }

    #[test]
    fn digram_uniqueness_at_rest() {
        let tokens = [1, 2, 3, 4, 1, 2, 3, 4, 5, 6, 1, 2, 5, 6, 3, 4];
        let mut s = Sequitur::new();
        s.push_all(&tokens);
        let hist = s.digram_occurrence_histogram();
        for (d, count) in hist {
            assert!(
                count <= 1,
                "digram {d:?} appears {count} times; uniqueness violated"
            );
        }
    }

    #[test]
    fn rule_utility_at_rest() {
        let tokens = [1, 2, 3, 1, 2, 3, 4, 4, 1, 2, 3, 9, 9, 1, 2];
        let mut s = Sequitur::new();
        s.push_all(&tokens);
        for rc in s.non_root_refcounts() {
            assert!(rc >= 2, "non-root rule with refcount {rc} violates rule utility");
        }
    }

    #[test]
    fn splitters_are_extracted() {
        // vocab = 3; token 3 and 4 are splitters 0 and 1.
        let tokens = [0, 1, 2, 3, 0, 1, 2, 4, 0, 1];
        let g = build_grammar(&tokens, 3);
        let flat = g.expand_root_tokens();
        assert!(flat.contains(&Symbol::Splitter(0)));
        assert!(flat.contains(&Symbol::Splitter(1)));
        assert_eq!(flat.len(), tokens.len());
    }

    #[test]
    fn compresses_redundant_input() {
        // Highly repetitive input must shrink considerably.
        let block: Vec<u32> = (0..32).collect();
        let mut tokens = Vec::new();
        for _ in 0..64 {
            tokens.extend_from_slice(&block);
        }
        let g = build_grammar(&tokens, 32);
        let total: usize = g.rules.iter().map(|r| r.len()).sum();
        assert!(
            total < tokens.len() / 4,
            "expected at least 4x element reduction, got {total} elements for {} tokens",
            tokens.len()
        );
        let expanded = g.expand_root_tokens();
        assert_eq!(expanded.len(), tokens.len());
    }

    #[test]
    fn tokens_pushed_counter() {
        let mut s = Sequitur::new();
        s.push_all(&[1, 2, 3]);
        assert_eq!(s.tokens_pushed(), 3);
    }
}
