//! Symbol types shared by the grammar, the DAG, and the GPU layouts.
//!
//! TADOC's dictionary conversion maps every distinct word to an integer, every
//! rule to an integer, and every file-boundary splitter to an integer
//! (Figure 1 (b) of the paper).  Inside this reproduction we keep the three
//! kinds distinct in the type system ([`Symbol`]) and provide a compact 32-bit
//! encoding ([`Symbol::encode`]) for the flattened device arrays used by the
//! GPU layouts.

/// Identifier of a distinct word in the dictionary.
pub type WordId = u32;
/// Identifier of a grammar rule. Rule 0 is always the root.
pub type RuleId = u32;

/// Number of bits reserved for the payload of an encoded symbol.
pub const PAYLOAD_BITS: u32 = 30;
/// Maximum payload value an encoded symbol can carry.
pub const MAX_PAYLOAD: u32 = (1 << PAYLOAD_BITS) - 1;

const TAG_WORD: u32 = 0b00 << PAYLOAD_BITS;
const TAG_RULE: u32 = 0b01 << PAYLOAD_BITS;
const TAG_SPLIT: u32 = 0b10 << PAYLOAD_BITS;
const TAG_MASK: u32 = 0b11 << PAYLOAD_BITS;

/// One element of a grammar rule body.
#[derive(Copy, Clone, PartialEq, Eq, Hash, PartialOrd, Ord, Debug)]
pub enum Symbol {
    /// A terminal word, identified by its dictionary id.
    Word(WordId),
    /// A non-terminal reference to another rule.
    Rule(RuleId),
    /// A unique file-boundary splitter. `Splitter(i)` terminates file `i`.
    Splitter(u32),
}

impl Symbol {
    /// Returns `true` if the symbol is a non-terminal rule reference.
    #[inline]
    pub fn is_rule(self) -> bool {
        matches!(self, Symbol::Rule(_))
    }

    /// Returns `true` if the symbol is a terminal word.
    #[inline]
    pub fn is_word(self) -> bool {
        matches!(self, Symbol::Word(_))
    }

    /// Returns `true` if the symbol is a file splitter.
    #[inline]
    pub fn is_splitter(self) -> bool {
        matches!(self, Symbol::Splitter(_))
    }

    /// The referenced rule id, if any.
    #[inline]
    pub fn as_rule(self) -> Option<RuleId> {
        match self {
            Symbol::Rule(r) => Some(r),
            _ => None,
        }
    }

    /// The word id, if any.
    #[inline]
    pub fn as_word(self) -> Option<WordId> {
        match self {
            Symbol::Word(w) => Some(w),
            _ => None,
        }
    }

    /// Encodes the symbol into a tagged 32-bit integer suitable for flattened
    /// device arrays (2 tag bits + 30 payload bits).
    ///
    /// # Panics
    /// Panics if the payload exceeds [`MAX_PAYLOAD`].
    #[inline]
    pub fn encode(self) -> u32 {
        match self {
            Symbol::Word(w) => {
                assert!(w <= MAX_PAYLOAD, "word id {w} exceeds encodable payload");
                TAG_WORD | w
            }
            Symbol::Rule(r) => {
                assert!(r <= MAX_PAYLOAD, "rule id {r} exceeds encodable payload");
                TAG_RULE | r
            }
            Symbol::Splitter(s) => {
                assert!(s <= MAX_PAYLOAD, "splitter id {s} exceeds encodable payload");
                TAG_SPLIT | s
            }
        }
    }

    /// Decodes a tagged 32-bit integer produced by [`Symbol::encode`].
    #[inline]
    pub fn decode(raw: u32) -> Symbol {
        let payload = raw & MAX_PAYLOAD;
        match raw & TAG_MASK {
            TAG_WORD => Symbol::Word(payload),
            TAG_RULE => Symbol::Rule(payload),
            TAG_SPLIT => Symbol::Splitter(payload),
            _ => panic!("invalid symbol tag in 0x{raw:08x}"),
        }
    }
}

impl std::fmt::Display for Symbol {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Symbol::Word(w) => write!(f, "w{w}"),
            Symbol::Rule(r) => write!(f, "R{r}"),
            Symbol::Splitter(s) => write!(f, "spt{s}"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn encode_decode_roundtrip() {
        for sym in [
            Symbol::Word(0),
            Symbol::Word(42),
            Symbol::Word(MAX_PAYLOAD),
            Symbol::Rule(0),
            Symbol::Rule(7_000_000),
            Symbol::Splitter(0),
            Symbol::Splitter(134_630),
        ] {
            assert_eq!(Symbol::decode(sym.encode()), sym);
        }
    }

    #[test]
    fn encoding_is_injective_across_kinds() {
        let a = Symbol::Word(5).encode();
        let b = Symbol::Rule(5).encode();
        let c = Symbol::Splitter(5).encode();
        assert_ne!(a, b);
        assert_ne!(b, c);
        assert_ne!(a, c);
    }

    #[test]
    fn kind_predicates() {
        assert!(Symbol::Word(1).is_word());
        assert!(!Symbol::Word(1).is_rule());
        assert!(Symbol::Rule(1).is_rule());
        assert!(Symbol::Splitter(1).is_splitter());
        assert_eq!(Symbol::Rule(9).as_rule(), Some(9));
        assert_eq!(Symbol::Word(9).as_rule(), None);
        assert_eq!(Symbol::Word(3).as_word(), Some(3));
    }

    #[test]
    #[should_panic]
    fn oversized_payload_panics() {
        let _ = Symbol::Word(MAX_PAYLOAD + 1).encode();
    }

    #[test]
    fn display_matches_paper_notation() {
        assert_eq!(Symbol::Word(1).to_string(), "w1");
        assert_eq!(Symbol::Rule(2).to_string(), "R2");
        assert_eq!(Symbol::Splitter(1).to_string(), "spt1");
    }
}
