//! Archive statistics — the quantities reported in Table II of the paper
//! (size, file count, rule count, vocabulary size) plus compression ratios.

use crate::archive::TadocArchive;
use crate::dag::Dag;

/// Summary statistics of a compressed archive.
#[derive(Debug, Clone, PartialEq)]
pub struct ArchiveStats {
    /// Original (uncompressed) corpus size in bytes.
    pub original_bytes: u64,
    /// Serialized compressed size in bytes.
    pub compressed_bytes: u64,
    /// Number of input files.
    pub num_files: usize,
    /// Number of grammar rules (the paper's "Rule #").
    pub num_rules: usize,
    /// Number of distinct words (the paper's "Vocabulary Size").
    pub vocabulary_size: usize,
    /// Total tokens in the original corpus.
    pub total_tokens: u64,
    /// Total symbols across all rule bodies.
    pub compressed_elements: usize,
    /// Number of DAG edges (deduplicated parent→child).
    pub dag_edges: usize,
    /// Number of DAG layers.
    pub dag_layers: usize,
    /// Dependent middle-layer nodes (non-root, non-leaf rules).
    pub middle_layer_nodes: usize,
}

impl ArchiveStats {
    /// Computes statistics for `archive`.
    pub fn compute(archive: &TadocArchive) -> Self {
        let dag = Dag::from_grammar(&archive.grammar);
        Self::compute_with_dag(archive, &dag)
    }

    /// Computes statistics reusing an already-built DAG.
    pub fn compute_with_dag(archive: &TadocArchive, dag: &Dag) -> Self {
        Self {
            original_bytes: archive.original_size_bytes(),
            compressed_bytes: archive.compressed_size_bytes() as u64,
            num_files: archive.num_files(),
            num_rules: archive.grammar.num_rules(),
            vocabulary_size: archive.vocabulary_size(),
            total_tokens: archive.files.iter().map(|f| f.token_count).sum(),
            compressed_elements: archive.grammar.total_elements(),
            dag_edges: dag.num_edges(),
            dag_layers: dag.num_layers,
            middle_layer_nodes: dag.middle_layer_nodes(),
        }
    }

    /// Space saving as a fraction of the original size (0.908 means 90.8%
    /// storage saved, the figure the TADOC papers report for their corpora).
    pub fn space_saving(&self) -> f64 {
        if self.original_bytes == 0 {
            return 0.0;
        }
        1.0 - self.compressed_bytes as f64 / self.original_bytes as f64
    }

    /// Ratio of original tokens to compressed elements (the computation-reuse
    /// factor TADOC exploits).
    pub fn token_reduction(&self) -> f64 {
        if self.compressed_elements == 0 {
            return 0.0;
        }
        self.total_tokens as f64 / self.compressed_elements as f64
    }
}

impl std::fmt::Display for ArchiveStats {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(f, "original size     : {} bytes", self.original_bytes)?;
        writeln!(f, "compressed size   : {} bytes", self.compressed_bytes)?;
        writeln!(f, "files             : {}", self.num_files)?;
        writeln!(f, "rules             : {}", self.num_rules)?;
        writeln!(f, "vocabulary        : {}", self.vocabulary_size)?;
        writeln!(f, "tokens            : {}", self.total_tokens)?;
        writeln!(f, "compressed elems  : {}", self.compressed_elements)?;
        writeln!(f, "dag edges         : {}", self.dag_edges)?;
        writeln!(f, "dag layers        : {}", self.dag_layers)?;
        writeln!(f, "middle-layer nodes: {}", self.middle_layer_nodes)?;
        write!(f, "space saving      : {:.1}%", self.space_saving() * 100.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::compress::{compress_corpus, CompressOptions};

    fn redundant_archive() -> TadocArchive {
        let paragraph = "alpha beta gamma delta epsilon zeta eta theta ".repeat(50);
        let files: Vec<(String, String)> = (0..8)
            .map(|i| (format!("doc{i}.txt"), paragraph.clone()))
            .collect();
        compress_corpus(&files, CompressOptions::default())
    }

    #[test]
    fn stats_fields_are_consistent() {
        let archive = redundant_archive();
        let stats = ArchiveStats::compute(&archive);
        assert_eq!(stats.num_files, 8);
        assert_eq!(stats.vocabulary_size, 8);
        assert_eq!(stats.total_tokens, 8 * 50 * 8);
        assert_eq!(stats.num_rules, archive.grammar.num_rules());
        assert!(stats.dag_layers >= 1);
    }

    #[test]
    fn redundant_corpus_saves_space() {
        let stats = ArchiveStats::compute(&redundant_archive());
        assert!(
            stats.space_saving() > 0.5,
            "highly redundant corpus should save >50% space, saved {:.1}%",
            stats.space_saving() * 100.0
        );
        assert!(stats.token_reduction() > 4.0);
    }

    #[test]
    fn display_renders_all_lines() {
        let stats = ArchiveStats::compute(&redundant_archive());
        let text = stats.to_string();
        assert!(text.contains("rules"));
        assert!(text.contains("space saving"));
    }

    #[test]
    fn empty_corpus_stats() {
        let archive = compress_corpus(
            &[("empty".to_string(), String::new())],
            CompressOptions::default(),
        );
        let stats = ArchiveStats::compute(&archive);
        assert_eq!(stats.total_tokens, 0);
        assert_eq!(stats.space_saving(), 0.0);
        assert_eq!(stats.token_reduction(), 0.0);
    }
}
