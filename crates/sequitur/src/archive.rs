//! The TADOC compressed archive and its binary serialization.
//!
//! An archive bundles the dictionary, the grammar, and per-file metadata —
//! everything an analytics engine needs to process the corpus without
//! decompression.  The on-disk format is a simple self-describing
//! little-endian layout (no external serialization dependency).

use crate::dictionary::Dictionary;
use crate::grammar::Grammar;
use crate::symbol::Symbol;
use crate::{Error, Result};
use std::io::{Read, Write};
use std::path::Path;

/// Magic bytes identifying an archive file.
pub const MAGIC: &[u8; 8] = b"GTADOC01";
/// Current format version.
pub const VERSION: u32 = 1;

/// Metadata about one compressed input file.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FileMeta {
    /// Original file name.
    pub name: String,
    /// Number of word tokens in the original file.
    pub token_count: u64,
    /// Original size in bytes (0 if unknown).
    pub byte_size: u64,
}

/// A complete TADOC compressed archive.
#[derive(Debug, Clone)]
pub struct TadocArchive {
    /// Word ⇄ id dictionary.
    pub dictionary: Dictionary,
    /// The compressed grammar.
    pub grammar: Grammar,
    /// Per-file metadata, in root order.
    pub files: Vec<FileMeta>,
}

impl TadocArchive {
    /// Number of input files.
    pub fn num_files(&self) -> usize {
        self.files.len()
    }

    /// Vocabulary size (number of distinct words).
    pub fn vocabulary_size(&self) -> usize {
        self.dictionary.len()
    }

    /// Decompresses the archive back into `(name, text)` pairs, joining words
    /// with single spaces (word-level losslessness, as in TADOC).
    pub fn decompress_files(&self) -> Vec<(String, String)> {
        let expanded = self.grammar.expand_files();
        expanded
            .into_iter()
            .enumerate()
            .map(|(i, words)| {
                let name = self
                    .files
                    .get(i)
                    .map(|m| m.name.clone())
                    .unwrap_or_else(|| format!("file{i}"));
                let text = words
                    .iter()
                    .map(|&w| self.dictionary.word(w))
                    .collect::<Vec<_>>()
                    .join(" ");
                (name, text)
            })
            .collect()
    }

    // ------------------------------------------------------------------
    // binary serialization
    // ------------------------------------------------------------------

    /// Serializes the archive into a byte vector.
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(64 + self.grammar.total_elements() * 4);
        out.extend_from_slice(MAGIC);
        put_u32(&mut out, VERSION);

        // Dictionary.
        let words = self.dictionary.words();
        put_u32(&mut out, words.len() as u32);
        for w in words {
            put_str(&mut out, w);
        }

        // Files.
        put_u32(&mut out, self.files.len() as u32);
        for f in &self.files {
            put_str(&mut out, &f.name);
            put_u64(&mut out, f.token_count);
            put_u64(&mut out, f.byte_size);
        }

        // Grammar.
        put_u32(&mut out, self.grammar.rules.len() as u32);
        for body in &self.grammar.rules {
            put_u32(&mut out, body.len() as u32);
            for sym in body {
                put_u32(&mut out, sym.encode());
            }
        }
        out
    }

    /// Deserializes an archive previously produced by [`TadocArchive::to_bytes`].
    pub fn from_bytes(bytes: &[u8]) -> Result<Self> {
        let mut cur = Cursor { buf: bytes, pos: 0 };
        let magic = cur.take(8)?;
        if magic != MAGIC {
            return Err(Error::Corrupt("bad magic".into()));
        }
        let version = cur.u32()?;
        if version != VERSION {
            return Err(Error::Corrupt(format!("unsupported version {version}")));
        }

        let word_count = cur.u32()? as usize;
        let mut words = Vec::with_capacity(word_count);
        for _ in 0..word_count {
            words.push(cur.string()?);
        }
        let dictionary = Dictionary::from_words(words);

        let file_count = cur.u32()? as usize;
        let mut files = Vec::with_capacity(file_count);
        for _ in 0..file_count {
            let name = cur.string()?;
            let token_count = cur.u64()?;
            let byte_size = cur.u64()?;
            files.push(FileMeta {
                name,
                token_count,
                byte_size,
            });
        }

        let rule_count = cur.u32()? as usize;
        let mut rules = Vec::with_capacity(rule_count);
        for _ in 0..rule_count {
            let len = cur.u32()? as usize;
            let mut body = Vec::with_capacity(len);
            for _ in 0..len {
                body.push(Symbol::decode(cur.u32()?));
            }
            rules.push(body);
        }
        let grammar = Grammar::new(rules);
        grammar.validate()?;

        Ok(Self {
            dictionary,
            grammar,
            files,
        })
    }

    /// Writes the archive to a file.
    pub fn write_to_file<P: AsRef<Path>>(&self, path: P) -> Result<()> {
        let bytes = self.to_bytes();
        let mut f = std::fs::File::create(path)?;
        f.write_all(&bytes)?;
        Ok(())
    }

    /// Reads an archive from a file.
    pub fn read_from_file<P: AsRef<Path>>(path: P) -> Result<Self> {
        let mut f = std::fs::File::open(path)?;
        let mut bytes = Vec::new();
        f.read_to_end(&mut bytes)?;
        Self::from_bytes(&bytes)
    }

    /// Size of the serialized archive in bytes.
    pub fn compressed_size_bytes(&self) -> usize {
        self.to_bytes().len()
    }

    /// Total size of the original corpus in bytes (sum of recorded file sizes).
    pub fn original_size_bytes(&self) -> u64 {
        self.files.iter().map(|f| f.byte_size).sum()
    }
}

fn put_u32(out: &mut Vec<u8>, v: u32) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_u64(out: &mut Vec<u8>, v: u64) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_str(out: &mut Vec<u8>, s: &str) {
    put_u32(out, s.len() as u32);
    out.extend_from_slice(s.as_bytes());
}

struct Cursor<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Cursor<'a> {
    fn take(&mut self, n: usize) -> Result<&'a [u8]> {
        if self.pos + n > self.buf.len() {
            return Err(Error::Corrupt(format!(
                "unexpected end of archive at offset {}",
                self.pos
            )));
        }
        let slice = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(slice)
    }

    fn u32(&mut self) -> Result<u32> {
        let b = self.take(4)?;
        Ok(u32::from_le_bytes([b[0], b[1], b[2], b[3]]))
    }

    fn u64(&mut self) -> Result<u64> {
        let b = self.take(8)?;
        Ok(u64::from_le_bytes([
            b[0], b[1], b[2], b[3], b[4], b[5], b[6], b[7],
        ]))
    }

    fn string(&mut self) -> Result<String> {
        let len = self.u32()? as usize;
        let bytes = self.take(len)?;
        String::from_utf8(bytes.to_vec())
            .map_err(|_| Error::Corrupt("invalid utf-8 in string".into()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::compress::{compress_corpus, CompressOptions};

    fn sample_archive() -> TadocArchive {
        compress_corpus(
            &[
                ("a.txt".to_string(), "the cat sat on the mat the cat".to_string()),
                ("b.txt".to_string(), "the cat ran on the mat".to_string()),
            ],
            CompressOptions::default(),
        )
    }

    #[test]
    fn serialization_roundtrip() {
        let archive = sample_archive();
        let bytes = archive.to_bytes();
        let restored = TadocArchive::from_bytes(&bytes).expect("valid archive");
        assert_eq!(restored.grammar, archive.grammar);
        assert_eq!(restored.files, archive.files);
        assert_eq!(restored.dictionary.len(), archive.dictionary.len());
        assert_eq!(restored.decompress_files(), archive.decompress_files());
    }

    #[test]
    fn corrupt_magic_is_rejected() {
        let mut bytes = sample_archive().to_bytes();
        bytes[0] = b'X';
        assert!(TadocArchive::from_bytes(&bytes).is_err());
    }

    #[test]
    fn truncated_archive_is_rejected() {
        let bytes = sample_archive().to_bytes();
        for cut in [4usize, 12, bytes.len() / 2, bytes.len() - 1] {
            assert!(
                TadocArchive::from_bytes(&bytes[..cut]).is_err(),
                "truncation at {cut} must fail"
            );
        }
    }

    #[test]
    fn file_io_roundtrip() {
        let archive = sample_archive();
        let dir = std::env::temp_dir();
        let path = dir.join("gtadoc_archive_test.bin");
        archive.write_to_file(&path).unwrap();
        let restored = TadocArchive::read_from_file(&path).unwrap();
        assert_eq!(restored.grammar, archive.grammar);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn size_accessors() {
        let archive = sample_archive();
        assert!(archive.compressed_size_bytes() > 16);
        assert_eq!(archive.original_size_bytes(), (30 + 22) as u64);
        assert_eq!(archive.num_files(), 2);
        assert_eq!(archive.vocabulary_size(), 6);
    }

    #[test]
    fn decompress_preserves_word_sequence() {
        let archive = sample_archive();
        let files = archive.decompress_files();
        assert_eq!(files[0].1, "the cat sat on the mat the cat");
        assert_eq!(files[1].1, "the cat ran on the mat");
    }
}
