//! Dictionary conversion: bidirectional word ⇄ integer mapping.
//!
//! TADOC's first compression step (Figure 1 (b)) replaces every word with a
//! small integer.  The dictionary is part of the compressed archive and is
//! needed to print human-readable analytics results.

use crate::fxhash::FxHashMap;
use crate::WordId;

/// Bidirectional mapping between words and dense integer ids.
#[derive(Debug, Default, Clone)]
pub struct Dictionary {
    words: Vec<String>,
    index: FxHashMap<String, WordId>,
}

impl Dictionary {
    /// Creates an empty dictionary.
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates a dictionary with capacity for `n` distinct words.
    pub fn with_capacity(n: usize) -> Self {
        Self {
            words: Vec::with_capacity(n),
            index: FxHashMap::with_capacity_and_hasher(n, Default::default()),
        }
    }

    /// Interns `word`, returning its id (existing or freshly assigned).
    pub fn intern(&mut self, word: &str) -> WordId {
        if let Some(&id) = self.index.get(word) {
            return id;
        }
        let id = self.words.len() as WordId;
        self.words.push(word.to_string());
        self.index.insert(word.to_string(), id);
        id
    }

    /// Looks up the id of `word` without inserting.
    pub fn get(&self, word: &str) -> Option<WordId> {
        self.index.get(word).copied()
    }

    /// Returns the word for `id`.
    ///
    /// # Panics
    /// Panics if `id` is out of range.
    pub fn word(&self, id: WordId) -> &str {
        &self.words[id as usize]
    }

    /// Returns the word for `id` if it exists.
    pub fn try_word(&self, id: WordId) -> Option<&str> {
        self.words.get(id as usize).map(|s| s.as_str())
    }

    /// Number of distinct words (the paper's "vocabulary size").
    pub fn len(&self) -> usize {
        self.words.len()
    }

    /// Returns `true` if no word has been interned yet.
    pub fn is_empty(&self) -> bool {
        self.words.is_empty()
    }

    /// Iterates over `(id, word)` pairs in id order.
    pub fn iter(&self) -> impl Iterator<Item = (WordId, &str)> {
        self.words
            .iter()
            .enumerate()
            .map(|(i, w)| (i as WordId, w.as_str()))
    }

    /// Total number of bytes of all interned words (used for size statistics).
    pub fn text_bytes(&self) -> usize {
        self.words.iter().map(|w| w.len()).sum()
    }

    /// Rebuilds a dictionary from an ordered word list (used by deserialization).
    pub fn from_words(words: Vec<String>) -> Self {
        let mut index = FxHashMap::with_capacity_and_hasher(words.len(), Default::default());
        for (i, w) in words.iter().enumerate() {
            index.insert(w.clone(), i as WordId);
        }
        Self { words, index }
    }

    /// Borrow the ordered word list (used by serialization).
    pub fn words(&self) -> &[String] {
        &self.words
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn intern_assigns_dense_ids() {
        let mut d = Dictionary::new();
        assert_eq!(d.intern("alpha"), 0);
        assert_eq!(d.intern("beta"), 1);
        assert_eq!(d.intern("alpha"), 0);
        assert_eq!(d.intern("gamma"), 2);
        assert_eq!(d.len(), 3);
    }

    #[test]
    fn lookup_roundtrip() {
        let mut d = Dictionary::new();
        let id = d.intern("tadoc");
        assert_eq!(d.word(id), "tadoc");
        assert_eq!(d.get("tadoc"), Some(id));
        assert_eq!(d.get("missing"), None);
        assert_eq!(d.try_word(999), None);
    }

    #[test]
    fn from_words_rebuilds_index() {
        let d = Dictionary::from_words(vec!["a".into(), "b".into(), "c".into()]);
        assert_eq!(d.get("b"), Some(1));
        assert_eq!(d.word(2), "c");
        assert_eq!(d.len(), 3);
    }

    #[test]
    fn iter_in_id_order() {
        let mut d = Dictionary::new();
        d.intern("x");
        d.intern("y");
        let collected: Vec<_> = d.iter().map(|(i, w)| (i, w.to_string())).collect();
        assert_eq!(collected, vec![(0, "x".to_string()), (1, "y".to_string())]);
    }

    #[test]
    fn text_bytes_counts_characters() {
        let mut d = Dictionary::new();
        d.intern("ab");
        d.intern("cde");
        assert_eq!(d.text_bytes(), 5);
    }
}
