//! Whitespace tokenization of input documents.
//!
//! TADOC operates at word granularity: documents are split on whitespace and
//! every resulting token becomes a dictionary entry.  The tokenizer optionally
//! folds case and strips surrounding punctuation, which keeps synthetic and
//! real corpora comparable without changing the compression behaviour.

use crate::dictionary::Dictionary;
use crate::WordId;

/// Tokenization options.
#[derive(Debug, Clone, Copy, Default)]
pub struct TokenizerOptions {
    /// Lower-case every token before interning.
    pub lowercase: bool,
    /// Strip leading/trailing ASCII punctuation from every token.
    pub strip_punctuation: bool,
}

/// Splits `text` into tokens and interns each into `dict`, returning the id
/// stream for the document.
pub fn tokenize_into(text: &str, dict: &mut Dictionary, opts: TokenizerOptions) -> Vec<WordId> {
    let mut out = Vec::with_capacity(text.len() / 6 + 1);
    let mut scratch = String::new();
    for raw in text.split_whitespace() {
        let token = normalize(raw, opts, &mut scratch);
        if token.is_empty() {
            continue;
        }
        out.push(dict.intern(token));
    }
    out
}

/// Splits `text` into owned token strings without interning (used by the
/// uncompressed baselines and by tests).
pub fn tokenize_plain(text: &str, opts: TokenizerOptions) -> Vec<String> {
    let mut scratch = String::new();
    text.split_whitespace()
        .map(|raw| normalize(raw, opts, &mut scratch).to_string())
        .filter(|t| !t.is_empty())
        .collect()
}

fn normalize<'a>(raw: &'a str, opts: TokenizerOptions, scratch: &'a mut String) -> &'a str {
    let trimmed = if opts.strip_punctuation {
        raw.trim_matches(|c: char| c.is_ascii_punctuation())
    } else {
        raw
    };
    if opts.lowercase && trimmed.chars().any(|c| c.is_uppercase()) {
        scratch.clear();
        scratch.extend(trimmed.chars().flat_map(|c| c.to_lowercase()));
        scratch.as_str()
    } else {
        trimmed
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn splits_on_whitespace() {
        let mut d = Dictionary::new();
        let ids = tokenize_into("the quick  brown\tfox\nthe", &mut d, TokenizerOptions::default());
        assert_eq!(ids.len(), 5);
        assert_eq!(ids[0], ids[4], "repeated word reuses the same id");
        assert_eq!(d.len(), 4);
    }

    #[test]
    fn lowercase_folding() {
        let mut d = Dictionary::new();
        let opts = TokenizerOptions {
            lowercase: true,
            ..Default::default()
        };
        let ids = tokenize_into("The THE the", &mut d, opts);
        assert_eq!(d.len(), 1);
        assert!(ids.iter().all(|&i| i == ids[0]));
    }

    #[test]
    fn punctuation_stripping() {
        let mut d = Dictionary::new();
        let opts = TokenizerOptions {
            strip_punctuation: true,
            ..Default::default()
        };
        let ids = tokenize_into("hello, world. (hello)", &mut d, opts);
        assert_eq!(d.len(), 2);
        assert_eq!(ids[0], ids[2]);
    }

    #[test]
    fn empty_and_punct_only_tokens_are_dropped() {
        let mut d = Dictionary::new();
        let opts = TokenizerOptions {
            strip_punctuation: true,
            ..Default::default()
        };
        let ids = tokenize_into("--- ... a", &mut d, opts);
        assert_eq!(ids.len(), 1);
        assert_eq!(d.word(ids[0]), "a");
    }

    #[test]
    fn plain_tokenizer_matches_interning_tokenizer() {
        let text = "a b c a b";
        let mut d = Dictionary::new();
        let ids = tokenize_into(text, &mut d, TokenizerOptions::default());
        let plain = tokenize_plain(text, TokenizerOptions::default());
        assert_eq!(ids.len(), plain.len());
        for (id, w) in ids.iter().zip(&plain) {
            assert_eq!(d.word(*id), w);
        }
    }
}
