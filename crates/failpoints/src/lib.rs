//! Zero-cost fault-injection points.
//!
//! A *fail point* is a named site in production code where a test can inject
//! a fault.  With the `enabled` feature the [`fail_point!`] macro expands to
//! a registry lookup that, when the site is armed, either panics with a
//! recognizable payload (statement form) or evaluates a caller-supplied
//! fault expression (expression form, used to return typed errors such as an
//! arena capacity failure).  Without the feature — the default, and the only
//! configuration release builds ship — the macro expands to **nothing**: no
//! branch, no registry, no atomic load.  The selection happens at macro
//! *definition* site via `#[cfg]`, so disabled builds carry zero cost.
//!
//! ```
//! # #[cfg(feature = "enabled")] {
//! failpoints::enable_times("demo-site", 1);
//! assert!(failpoints::is_armed("demo-site"));
//! failpoints::reset();
//! # }
//! ```
//!
//! Sites in this workspace (see `ARCHITECTURE.md`, *Failure model*):
//!
//! | site             | planted at                                    |
//! |------------------|-----------------------------------------------|
//! | `worker-epoch`   | entry of every worker's pool-epoch body       |
//! | `chunk-boundary` | each chunk claimed from a work queue          |
//! | `arena-reserve`  | arena hash-table insert (capacity check)      |
//! | `merge-fold`     | shard-buffer merge fold                       |

#![forbid(unsafe_code)]

#[cfg(feature = "enabled")]
use std::collections::HashMap;
#[cfg(feature = "enabled")]
use std::sync::{Mutex, OnceLock};

/// How an armed site fires.
#[cfg(feature = "enabled")]
#[derive(Clone)]
enum Arm {
    /// Fire on every hit until [`disable`]d.
    Always,
    /// Fire on the next `n` hits, then disarm automatically.
    Times(u64),
    /// Run a hook on every hit *without* firing — used by tests to perturb
    /// external state (cancel a token, stall past a deadline) at the exact
    /// moment execution crosses the site, deterministically.
    Observe(std::sync::Arc<dyn Fn() + Send + Sync>),
}

#[cfg(feature = "enabled")]
fn registry() -> &'static Mutex<HashMap<String, Arm>> {
    static REGISTRY: OnceLock<Mutex<HashMap<String, Arm>>> = OnceLock::new();
    REGISTRY.get_or_init(|| Mutex::new(HashMap::new()))
}

/// Arms `name`: every subsequent hit fires until [`disable`]d.
#[cfg(feature = "enabled")]
pub fn enable(name: &str) {
    registry()
        .lock()
        .unwrap()
        .insert(name.to_string(), Arm::Always);
}

/// Arms `name` for exactly `times` hits, then the site disarms itself.
#[cfg(feature = "enabled")]
pub fn enable_times(name: &str, times: u64) {
    if times == 0 {
        disable(name);
        return;
    }
    registry()
        .lock()
        .unwrap()
        .insert(name.to_string(), Arm::Times(times));
}

/// Arms `name` with an observation hook: every hit runs `hook` and then
/// proceeds normally (the site does not fire).  Lets a test change external
/// state — cancel a token, sleep past a deadline — at the precise moment
/// execution crosses the site, instead of racing a timer against the query.
#[cfg(feature = "enabled")]
pub fn observe(name: &str, hook: impl Fn() + Send + Sync + 'static) {
    registry()
        .lock()
        .unwrap()
        .insert(name.to_string(), Arm::Observe(std::sync::Arc::new(hook)));
}

/// Disarms `name`.
#[cfg(feature = "enabled")]
pub fn disable(name: &str) {
    registry().lock().unwrap().remove(name);
}

/// Disarms every site.  Call between tests sharing a process.
#[cfg(feature = "enabled")]
pub fn reset() {
    registry().lock().unwrap().clear();
}

/// Whether `name` is currently armed (does not consume a hit).
#[cfg(feature = "enabled")]
pub fn is_armed(name: &str) -> bool {
    registry().lock().unwrap().contains_key(name)
}

/// Consumes one hit of `name`; `true` when the site must fire.
/// Called by the [`fail_point!`] expansion, not by user code.
#[cfg(feature = "enabled")]
#[doc(hidden)]
pub fn should_fail(name: &str) -> bool {
    let hook = {
        let mut map = registry().lock().unwrap();
        match map.get_mut(name) {
            None => return false,
            Some(Arm::Always) => return true,
            Some(Arm::Times(n)) => {
                *n -= 1;
                if *n == 0 {
                    map.remove(name);
                }
                return true;
            }
            Some(Arm::Observe(hook)) => hook.clone(),
        }
    };
    // Run outside the registry lock: the hook may arm or disarm sites.
    hook();
    false
}

/// Panics with the canonical injected-fault payload for `name`.
/// Called by the statement-form [`fail_point!`] expansion.
#[cfg(feature = "enabled")]
#[doc(hidden)]
pub fn raise(name: &str) -> ! {
    std::panic::panic_any(format!("injected fault at failpoint '{name}'"))
}

/// Marks a fault-injection site.
///
/// * `fail_point!("site")` — panics with an injected-fault payload when the
///   site is armed.
/// * `fail_point!("site", expr)` — evaluates `expr` when armed; use inside a
///   `Result`-returning function as `fail_point!("site", return Err(...))`
///   to inject a typed error instead of a panic.
///
/// Expands to nothing without the `enabled` feature.
#[cfg(feature = "enabled")]
#[macro_export]
macro_rules! fail_point {
    ($name:expr) => {
        if $crate::should_fail($name) {
            $crate::raise($name);
        }
    };
    ($name:expr, $fault:expr) => {
        if $crate::should_fail($name) {
            $fault
        }
    };
}

/// Marks a fault-injection site.
///
/// This is the disabled expansion (feature `enabled` off): both forms
/// compile to nothing, so planted sites cost literally zero in release
/// builds.
#[cfg(not(feature = "enabled"))]
#[macro_export]
macro_rules! fail_point {
    ($name:expr) => {};
    ($name:expr, $fault:expr) => {};
}

#[cfg(all(test, feature = "enabled"))]
mod tests {
    // Registry tests only; firing behaviour is covered by the workspace-level
    // fault-injection suite.  These share one process-global registry, so
    // each test uses its own site names.

    #[test]
    fn unarmed_site_never_fires() {
        assert!(!crate::should_fail("t-unarmed"));
    }

    #[test]
    fn enable_times_consumes_hits_then_disarms() {
        crate::enable_times("t-twice", 2);
        assert!(crate::should_fail("t-twice"));
        assert!(crate::should_fail("t-twice"));
        assert!(!crate::should_fail("t-twice"));
        assert!(!crate::is_armed("t-twice"));
    }

    #[test]
    fn enable_fires_until_disabled() {
        crate::enable("t-always");
        assert!(crate::should_fail("t-always"));
        assert!(crate::should_fail("t-always"));
        crate::disable("t-always");
        assert!(!crate::should_fail("t-always"));
    }

    #[test]
    fn enable_times_zero_is_disable() {
        crate::enable("t-zero");
        crate::enable_times("t-zero", 0);
        assert!(!crate::is_armed("t-zero"));
    }

    #[test]
    fn statement_form_panics_with_recognizable_payload() {
        crate::enable_times("t-panic", 1);
        let err = std::panic::catch_unwind(|| {
            fail_point!("t-panic");
        })
        .expect_err("armed site must panic");
        let msg = err
            .downcast_ref::<String>()
            .expect("injected payload is a String");
        assert!(msg.contains("t-panic"), "payload names the site: {msg}");
    }

    #[test]
    fn observe_hook_runs_without_firing() {
        use std::sync::atomic::{AtomicU32, Ordering};
        use std::sync::Arc;
        let hits = Arc::new(AtomicU32::new(0));
        let h = hits.clone();
        crate::observe("t-observe", move || {
            h.fetch_add(1, Ordering::Relaxed);
        });
        assert!(!crate::should_fail("t-observe"), "observed sites never fire");
        assert!(!crate::should_fail("t-observe"));
        assert_eq!(hits.load(Ordering::Relaxed), 2, "hook runs on every hit");
        crate::disable("t-observe");
        assert!(!crate::should_fail("t-observe"));
        assert_eq!(hits.load(Ordering::Relaxed), 2);
    }

    #[test]
    fn expression_form_evaluates_fault_expression() {
        fn guarded() -> Result<u32, &'static str> {
            fail_point!("t-expr", return Err("injected"));
            Ok(7)
        }
        assert_eq!(guarded(), Ok(7));
        crate::enable_times("t-expr", 1);
        assert_eq!(guarded(), Err("injected"));
        assert_eq!(guarded(), Ok(7));
    }
}
