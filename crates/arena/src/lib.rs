//! # arena
//!
//! Backend-agnostic data-structure substrate shared by every execution
//! engine in the workspace: the self-maintained memory pool of Section IV-C
//! and the flat open-addressing local tables of Figure 5.
//!
//! The G-TADOC paper sizes every per-rule table during the initialization
//! phase, allocates one large flat buffer, and hands out non-overlapping
//! regions by a prefix-sum bump allocation, because dynamic allocation from
//! thousands of GPU threads is not an option.  The same layout turns out to
//! be exactly what a fine-grained *CPU* engine wants too — per-worker tables
//! carved out of one arena, written lock-free, then merged — so this crate
//! hosts the pool and the table codecs with **no device dependency**:
//!
//! * [`MemoryPool`] / [`PoolRegion`] — the flat `u32` arena with
//!   non-overlapping regions ([`MemoryPool::split_regions`] hands every
//!   region out as a disjoint `&mut [u32]`, which is what scoped worker
//!   threads borrow);
//! * [`local_table`] — the compact `u32 → u32` open-addressing table used by
//!   the simulated GPU traversals (private per-rule tables need no locks);
//! * [`flat64`] — the `u32 → u64` variant used by the fine-grained CPU
//!   engine, whose analytics counts exceed 32 bits;
//! * [`mix64`] — the shared full-avalanche finalizer both tables hash with.
//!
//! The `gtadoc` crate re-exports these for the simulator backend; the
//! `tadoc` fine-grained engine uses them directly on real threads.

/// SplitMix64 finalizer: a full-avalanche mix so that the *low* bits used for
/// bucket selection depend on every input bit.  (A bare multiplicative hash
/// leaves the low bits a function of only the low input bits, which makes
/// packed multi-word sequence keys — identical last word, different prefix —
/// collide into the same bucket and degenerate into long chains.)
#[inline]
pub fn mix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// A region of the pool owned by one consumer (a rule, or a CPU worker).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PoolRegion {
    /// First `u32` word of the region inside the pool buffer.
    pub offset: u32,
    /// Length of the region in `u32` words.
    pub len: u32,
}

impl PoolRegion {
    /// An empty region.
    pub const EMPTY: PoolRegion = PoolRegion { offset: 0, len: 0 };

    /// The half-open word range of this region.
    pub fn range(&self) -> std::ops::Range<usize> {
        self.offset as usize..(self.offset + self.len) as usize
    }
}

/// The memory pool: one flat `u32` buffer plus the per-consumer regions.
#[derive(Debug)]
pub struct MemoryPool {
    storage: Vec<u32>,
    regions: Vec<PoolRegion>,
}

impl MemoryPool {
    /// Builds a pool from per-consumer requirements (in `u32` words) with a
    /// bump (prefix-sum) allocation.
    ///
    /// # Panics
    /// Panics if the total exceeds `u32::MAX` words (shard the dataset).
    pub fn from_requirements(requirements: &[u32]) -> Self {
        let mut regions = Vec::with_capacity(requirements.len());
        let mut offset: u64 = 0;
        for &req in requirements {
            regions.push(PoolRegion {
                offset: offset as u32,
                len: req,
            });
            offset += req as u64;
        }
        assert!(
            offset <= u32::MAX as u64,
            "memory pool exceeds 4G words; shard the dataset"
        );
        Self {
            storage: vec![0u32; offset as usize],
            regions,
        }
    }

    /// Number of consumers (regions).
    pub fn num_regions(&self) -> usize {
        self.regions.len()
    }

    /// Total pool size in `u32` words.
    pub fn total_words(&self) -> usize {
        self.storage.len()
    }

    /// The region of consumer `i`.
    pub fn region(&self, i: usize) -> PoolRegion {
        self.regions[i]
    }

    /// Immutable view of consumer `i`'s region.
    pub fn slice(&self, i: usize) -> &[u32] {
        &self.storage[self.regions[i].range()]
    }

    /// Mutable view of consumer `i`'s region.
    pub fn slice_mut(&mut self, i: usize) -> &mut [u32] {
        let range = self.regions[i].range();
        &mut self.storage[range]
    }

    /// Mutable access to the whole backing storage together with the region
    /// table — what a kernel holding the raw pool pointer would see.
    pub fn storage_and_regions(&mut self) -> (&mut [u32], &[PoolRegion]) {
        (&mut self.storage, &self.regions)
    }

    /// Splits the pool into one disjoint mutable slice per region, in region
    /// order — the shape scoped worker threads borrow so every worker owns
    /// its region with no locks.
    pub fn split_regions(&mut self) -> Vec<&mut [u32]> {
        let mut out = Vec::with_capacity(self.regions.len());
        let mut rest: &mut [u32] = &mut self.storage;
        let mut consumed = 0usize;
        for region in &self.regions {
            debug_assert_eq!(region.offset as usize, consumed, "regions must be contiguous");
            let (head, tail) = rest.split_at_mut(region.len as usize);
            out.push(head);
            rest = tail;
            consumed += region.len as usize;
        }
        out
    }

    /// Verifies that no two regions overlap (invariant test hook).
    pub fn regions_disjoint(&self) -> bool {
        let mut sorted: Vec<PoolRegion> =
            self.regions.iter().copied().filter(|r| r.len > 0).collect();
        sorted.sort_by_key(|r| r.offset);
        sorted
            .windows(2)
            .all(|w| w[0].offset + w[0].len <= w[1].offset)
    }
}

/// Operations on a private `u32 → u32` table stored inside a pool region.
///
/// Region layout (in `u32` words): `[capacity, size, key0, val0, key1, val1, …]`
/// with open addressing (linear probing) over the `capacity` pair slots.
/// `u32::MAX` marks an empty key slot.
pub mod local_table {
    /// Marker for an empty slot.
    pub const EMPTY_KEY: u32 = u32::MAX;
    /// Fixed header length in words (capacity, size).
    pub const HEADER_WORDS: u32 = 2;

    /// Number of `u32` words a table for `max_keys` distinct keys requires.
    pub fn words_required(max_keys: u32) -> u32 {
        // 2x slots for a comfortable load factor, 2 words per slot, plus header.
        HEADER_WORDS + 2 * 2 * max_keys.max(1)
    }

    /// Initialises a region as an empty table.
    pub fn init(region: &mut [u32]) {
        if region.len() < HEADER_WORDS as usize + 2 {
            if let Some(first) = region.first_mut() {
                *first = 0;
            }
            return;
        }
        let capacity = ((region.len() - HEADER_WORDS as usize) / 2) as u32;
        region[0] = capacity;
        region[1] = 0;
        for slot in 0..capacity as usize {
            region[HEADER_WORDS as usize + 2 * slot] = EMPTY_KEY;
            region[HEADER_WORDS as usize + 2 * slot + 1] = 0;
        }
    }

    /// Adds `count` to `key`'s entry (inserting it if absent).
    ///
    /// # Panics
    /// Panics if the table is full — the bounds computed by
    /// `genLocTblBoundKernel` guarantee this cannot happen for well-formed
    /// inputs.
    pub fn insert_add(region: &mut [u32], key: u32, count: u32) {
        let capacity = region[0];
        assert!(capacity > 0, "local table has no capacity");
        let mut slot = (super::mix64(key as u64) as u32) % capacity;
        for _ in 0..capacity {
            let base = (HEADER_WORDS + 2 * slot) as usize;
            if region[base] == EMPTY_KEY {
                region[base] = key;
                region[base + 1] = count;
                region[1] += 1;
                return;
            }
            if region[base] == key {
                region[base + 1] += count;
                return;
            }
            slot = (slot + 1) % capacity;
        }
        panic!("local table overflow (capacity {capacity})");
    }

    /// Number of distinct keys stored.
    pub fn len(region: &[u32]) -> u32 {
        if region.len() < HEADER_WORDS as usize {
            0
        } else {
            region[1]
        }
    }

    /// Iterates over `(key, count)` pairs.
    pub fn iter(region: &[u32]) -> impl Iterator<Item = (u32, u32)> + '_ {
        let capacity = if region.len() >= HEADER_WORDS as usize {
            region[0] as usize
        } else {
            0
        };
        (0..capacity).filter_map(move |slot| {
            let base = HEADER_WORDS as usize + 2 * slot;
            if region[base] == EMPTY_KEY {
                None
            } else {
                Some((region[base], region[base + 1]))
            }
        })
    }

    /// Looks up the count stored for `key`.
    pub fn get(region: &[u32], key: u32) -> Option<u32> {
        let capacity = region[0];
        if capacity == 0 {
            return None;
        }
        let mut slot = (super::mix64(key as u64) as u32) % capacity;
        for _ in 0..capacity {
            let base = (HEADER_WORDS + 2 * slot) as usize;
            if region[base] == EMPTY_KEY {
                return None;
            }
            if region[base] == key {
                return Some(region[base + 1]);
            }
            slot = (slot + 1) % capacity;
        }
        None
    }
}

/// Operations on a private `u32 → u64` table stored inside a pool region.
///
/// Same open-addressing design as [`local_table`], but values are 64-bit so
/// the fine-grained CPU engine can accumulate analytics counts (word
/// frequency × rule weight) without overflow.  Region layout (in `u32`
/// words): `[capacity, size, key0, lo0, hi0, key1, lo1, hi1, …]` — three
/// words per slot.
pub mod flat64 {
    /// Marker for an empty slot.
    pub const EMPTY_KEY: u32 = u32::MAX;
    /// Fixed header length in words (capacity, size).
    pub const HEADER_WORDS: u32 = 2;
    const SLOT_WORDS: u32 = 3;

    /// Number of `u32` words a table for `max_keys` distinct keys requires.
    pub fn words_required(max_keys: u32) -> u32 {
        // 2x slots for a comfortable load factor, 3 words per slot, plus header.
        HEADER_WORDS + SLOT_WORDS * 2 * max_keys.max(1)
    }

    /// Initialises a region as an empty table.
    pub fn init(region: &mut [u32]) {
        if region.len() < (HEADER_WORDS + SLOT_WORDS) as usize {
            if let Some(first) = region.first_mut() {
                *first = 0;
            }
            return;
        }
        let capacity = ((region.len() - HEADER_WORDS as usize) / SLOT_WORDS as usize) as u32;
        region[0] = capacity;
        region[1] = 0;
        for slot in 0..capacity as usize {
            region[HEADER_WORDS as usize + SLOT_WORDS as usize * slot] = EMPTY_KEY;
        }
    }

    #[inline]
    fn write_value(region: &mut [u32], base: usize, value: u64) {
        region[base + 1] = value as u32;
        region[base + 2] = (value >> 32) as u32;
    }

    #[inline]
    fn read_value(region: &[u32], base: usize) -> u64 {
        region[base + 1] as u64 | (region[base + 2] as u64) << 32
    }

    /// Adds `count` to `key`'s entry (inserting it if absent).
    ///
    /// # Panics
    /// Panics if the table is full — capacity bounds are computed during the
    /// initialization phase exactly as on the GPU.
    pub fn insert_add(region: &mut [u32], key: u32, count: u64) {
        let capacity = region[0];
        assert!(capacity > 0, "flat64 table has no capacity");
        let mut slot = (super::mix64(key as u64) as u32) % capacity;
        for _ in 0..capacity {
            let base = (HEADER_WORDS + SLOT_WORDS * slot) as usize;
            if region[base] == EMPTY_KEY {
                region[base] = key;
                write_value(region, base, count);
                region[1] += 1;
                return;
            }
            if region[base] == key {
                let v = read_value(region, base) + count;
                write_value(region, base, v);
                return;
            }
            slot = (slot + 1) % capacity;
        }
        panic!("flat64 table overflow (capacity {capacity})");
    }

    /// Number of distinct keys stored.
    pub fn len(region: &[u32]) -> u32 {
        if region.len() < HEADER_WORDS as usize {
            0
        } else {
            region[1]
        }
    }

    /// Iterates over `(key, value)` pairs in slot order.
    pub fn iter(region: &[u32]) -> impl Iterator<Item = (u32, u64)> + '_ {
        let capacity = if region.len() >= HEADER_WORDS as usize {
            region[0] as usize
        } else {
            0
        };
        (0..capacity).filter_map(move |slot| {
            let base = HEADER_WORDS as usize + SLOT_WORDS as usize * slot;
            if region[base] == EMPTY_KEY {
                None
            } else {
                Some((region[base], read_value(region, base)))
            }
        })
    }

    /// Looks up the value stored for `key`.
    pub fn get(region: &[u32], key: u32) -> Option<u64> {
        let capacity = region[0];
        if capacity == 0 {
            return None;
        }
        let mut slot = (super::mix64(key as u64) as u32) % capacity;
        for _ in 0..capacity {
            let base = (HEADER_WORDS + SLOT_WORDS * slot) as usize;
            if region[base] == EMPTY_KEY {
                return None;
            }
            if region[base] == key {
                return Some(read_value(region, base));
            }
            slot = (slot + 1) % capacity;
        }
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pool_regions_follow_requirements() {
        let pool = MemoryPool::from_requirements(&[4, 0, 8, 2]);
        assert_eq!(pool.num_regions(), 4);
        assert_eq!(pool.total_words(), 14);
        assert_eq!(pool.region(0), PoolRegion { offset: 0, len: 4 });
        assert_eq!(pool.region(1), PoolRegion { offset: 4, len: 0 });
        assert_eq!(pool.region(2), PoolRegion { offset: 4, len: 8 });
        assert_eq!(pool.region(3), PoolRegion { offset: 12, len: 2 });
        assert!(pool.regions_disjoint());
    }

    #[test]
    fn split_regions_yields_disjoint_mut_slices() {
        let mut pool = MemoryPool::from_requirements(&[3, 0, 2]);
        {
            let mut slices = pool.split_regions();
            assert_eq!(slices.len(), 3);
            assert_eq!(slices[0].len(), 3);
            assert_eq!(slices[1].len(), 0);
            assert_eq!(slices[2].len(), 2);
            slices[0][1] = 7;
            slices[2][0] = 9;
        }
        assert_eq!(pool.slice(0), &[0, 7, 0]);
        assert_eq!(pool.slice(2), &[9, 0]);
    }

    #[test]
    fn empty_pool_is_fine() {
        let mut pool = MemoryPool::from_requirements(&[]);
        assert_eq!(pool.num_regions(), 0);
        assert_eq!(pool.total_words(), 0);
        assert!(pool.split_regions().is_empty());
    }

    #[test]
    fn local_table_roundtrip() {
        let mut region = vec![0u32; local_table::words_required(8) as usize];
        local_table::init(&mut region);
        local_table::insert_add(&mut region, 5, 2);
        local_table::insert_add(&mut region, 9, 1);
        local_table::insert_add(&mut region, 5, 3);
        assert_eq!(local_table::get(&region, 5), Some(5));
        assert_eq!(local_table::get(&region, 9), Some(1));
        assert_eq!(local_table::get(&region, 7), None);
        assert_eq!(local_table::len(&region), 2);
    }

    #[test]
    fn flat64_holds_values_beyond_32_bits() {
        let mut region = vec![0u32; flat64::words_required(16) as usize];
        flat64::init(&mut region);
        let big = 7 * (u32::MAX as u64);
        flat64::insert_add(&mut region, 3, big);
        flat64::insert_add(&mut region, 3, 1);
        flat64::insert_add(&mut region, 100, 42);
        assert_eq!(flat64::get(&region, 3), Some(big + 1));
        assert_eq!(flat64::get(&region, 100), Some(42));
        assert_eq!(flat64::get(&region, 4), None);
        assert_eq!(flat64::len(&region), 2);
        let mut pairs: Vec<(u32, u64)> = flat64::iter(&region).collect();
        pairs.sort_unstable();
        assert_eq!(pairs, vec![(3, big + 1), (100, 42)]);
    }

    #[test]
    fn flat64_capacity_bound_is_honoured() {
        let mut region = vec![0u32; flat64::words_required(32) as usize];
        flat64::init(&mut region);
        for k in 0..32u32 {
            flat64::insert_add(&mut region, 1000 + k, k as u64 + 1);
        }
        assert_eq!(flat64::len(&region), 32);
        for k in 0..32u32 {
            assert_eq!(flat64::get(&region, 1000 + k), Some(k as u64 + 1));
        }
    }

    #[test]
    fn mix64_avalanches_low_bits() {
        // Keys differing only in high bits must land in different buckets
        // often enough; sanity-check a few.
        let a = mix64(1 << 40) & 0xff;
        let b = mix64(2 << 40) & 0xff;
        let c = mix64(3 << 40) & 0xff;
        assert!(!(a == b && b == c), "low bits must depend on high input bits");
    }
}
