//! # arena
//!
//! Backend-agnostic data-structure substrate shared by every execution
//! engine in the workspace: the self-maintained memory pool of Section IV-C
//! and the flat open-addressing local tables of Figure 5.
//!
//! The G-TADOC paper sizes every per-rule table during the initialization
//! phase, allocates one large flat buffer, and hands out non-overlapping
//! regions by a prefix-sum bump allocation, because dynamic allocation from
//! thousands of GPU threads is not an option.  The same layout turns out to
//! be exactly what a fine-grained *CPU* engine wants too — per-worker tables
//! carved out of one arena, written lock-free, then merged — so this crate
//! hosts the pool and the table codecs with **no device dependency**:
//!
//! * [`MemoryPool`] / [`PoolRegion`] — the flat `u32` arena with
//!   non-overlapping regions ([`MemoryPool::split_regions`] hands every
//!   region out as a disjoint `&mut [u32]`, which is what scoped worker
//!   threads borrow);
//! * [`local_table`] — the compact `u32 → u32` open-addressing table used by
//!   the simulated GPU traversals (private per-rule tables need no locks);
//! * [`flat64`] — the `u32 → u64` variant used by the fine-grained CPU
//!   engine, whose analytics counts exceed 32 bits;
//! * [`mix64`] — the shared full-avalanche finalizer both tables hash with;
//! * [`shard`] — append-and-compact shard buffers ([`shard::ShardBuf`]) for
//!   the sharded lock-free merges: workers append `(key, value)` entries per
//!   hash shard, merges do one sort + fold per shard.
//!
//! The `gtadoc` crate re-exports these for the simulator backend; the
//! `tadoc` fine-grained engine uses them directly on real threads.
//!
//! ## Table design: group probing over control tags
//!
//! Both table codecs share one Swiss-table-style probing core (the `probe`
//! module): every slot owns a 1-byte control *tag* — `0` for empty, or
//! `0x80 | top-7-hash-bits` for occupied — packed into `u32` words ahead of
//! the key/value arrays.  A probe hashes the key with [`mix64`], picks a
//! 16-slot *group* with a widening-multiply range reduction over the **full
//! 64-bit hash** (no modulo, no discarded high bits), and scans all 16 tags
//! of the group at once: with SSE2 on `x86_64` (`_mm_cmpeq_epi8` +
//! `_mm_movemask_epi8`), or with an exact branch-free `u64` SWAR comparison
//! everywhere else.  Candidate lanes are then confirmed against the key
//! array.  Iteration walks the tag words and skips empty groups in one
//! 16-lane test each, so scanning a sparsely filled table costs
//! `O(capacity / 16)` word reads instead of a full key-array sweep.
//!
//! ## Sizing contract
//!
//! Capacity is guaranteed by the *consumer*, never grown by the table:
//!
//! * `words_required(max_keys)` returns the exact region length for a table
//!   that can always hold `max_keys` distinct keys (2× slots for the load
//!   factor, rounded up to a whole tag group).  The bounds come from the
//!   initialization phase — `genLocTblBoundKernel` per rule on the GPU
//!   path, the per-worker distinct-key prefix-scan on the CPU path.
//! * `words_required(0) == 0`: a consumer with no keys gets a zero-length
//!   region.  Zero-capacity tables are **legal no-ops** for `init`, `iter`,
//!   `len` and `get`; only `insert_add` panics (with a clear message), since
//!   an insert proves the consumer's bound was wrong.
//! * A full table fails fast: the probe loop counts wrapped groups and
//!   panics with the table's capacity and the offending key instead of
//!   spinning forever.  Well-sized tables never take that path — the probe
//!   always terminates at an empty lane first (the tables never delete, so
//!   groups only ever fill up).

//!
//! ## Example
//!
//! One pool, one region per worker, sized during the initialization phase:
//!
//! ```
//! use arena::{flat64, MemoryPool};
//!
//! // Worker 0 expects at most 8 distinct keys; worker 1 expects none.
//! let requirements = [flat64::words_required(8), flat64::words_required(0)];
//! let mut pool = MemoryPool::from_requirements(&requirements);
//! let mut regions = pool.split_regions();
//!
//! flat64::init(regions[0]);
//! flat64::insert_add(regions[0], 42, 5);
//! flat64::insert_add(regions[0], 42, 5);
//! assert_eq!(flat64::get(regions[0], 42), Some(10));
//!
//! // `words_required(0) == 0`: the no-key worker legally gets a
//! // zero-length region, and init/iter/len/get are no-ops on it.
//! assert_eq!(regions[1].len(), 0);
//! flat64::init(regions[1]);
//! assert_eq!(flat64::len(regions[1]), 0);
//! ```

pub mod shard;

/// A violated capacity bound: the recoverable form of every sizing failure
/// in this crate.
///
/// The `try_*` APIs ([`local_table::try_insert_add`],
/// [`flat64::try_insert_add`], [`MemoryPool::try_from_requirements`],
/// `try_words_required`) return it as a `Result`; the panicking wrappers
/// raise it as a **typed panic payload** via [`std::panic::panic_any`], so a
/// dispatcher that catches a worker's unwind can downcast the payload to
/// `CapacityError` and classify the fault as recoverable capacity
/// exhaustion rather than an arbitrary bug.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CapacityError {
    /// Insert into a region the consumer sized for zero keys.
    ZeroCapacity {
        /// The key whose insert was rejected.
        key: u32,
    },
    /// Wrapped-probe overflow: the table is full, the consumer's
    /// distinct-key bound was violated.
    TableOverflow {
        /// The key whose insert was rejected.
        key: u32,
        /// Table capacity in slots.
        capacity: u32,
        /// Distinct keys already stored.
        len: u32,
    },
    /// A pool or table region exceeds the 4G-word (`u32` offset) addressing
    /// limit; the dataset must be sharded.
    PoolTooLarge {
        /// The requested size in `u32` words.
        words: u64,
    },
}

impl std::fmt::Display for CapacityError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CapacityError::ZeroCapacity { key } => write!(
                f,
                "insert into zero-capacity table (key {key}): the consumer \
                 sized this region for 0 keys"
            ),
            CapacityError::TableOverflow { key, capacity, len } => write!(
                f,
                "table overflow inserting key {key}: capacity {capacity} slots, \
                 {len} keys stored (the consumer's distinct-key bound was violated)"
            ),
            CapacityError::PoolTooLarge { words } => write!(
                f,
                "allocation of {words} words exceeds the 4G-word pool limit; \
                 shard the dataset"
            ),
        }
    }
}

impl std::error::Error for CapacityError {}

/// Raises `err` as a typed panic payload (downcastable to [`CapacityError`]).
#[inline(never)]
#[cold]
fn raise_capacity(err: CapacityError) -> ! {
    std::panic::panic_any(err)
}

/// SplitMix64 finalizer: a full-avalanche mix so that *every* output bit used
/// for group selection and control tags depends on every input bit.  (A bare
/// multiplicative hash leaves the low bits a function of only the low input
/// bits, which makes packed multi-word sequence keys — identical last word,
/// different prefix — collide into the same bucket and degenerate into long
/// chains.)
#[inline]
pub fn mix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// A region of the pool owned by one consumer (a rule, or a CPU worker).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PoolRegion {
    /// First `u32` word of the region inside the pool buffer.
    pub offset: u32,
    /// Length of the region in `u32` words.
    pub len: u32,
}

impl PoolRegion {
    /// An empty region.
    pub const EMPTY: PoolRegion = PoolRegion { offset: 0, len: 0 };

    /// The half-open word range of this region.
    pub fn range(&self) -> std::ops::Range<usize> {
        self.offset as usize..(self.offset + self.len) as usize
    }
}

/// The memory pool: one flat `u32` buffer plus the per-consumer regions.
#[derive(Debug)]
pub struct MemoryPool {
    storage: Vec<u32>,
    regions: Vec<PoolRegion>,
}

impl MemoryPool {
    /// Builds a pool from per-consumer requirements (in `u32` words) with a
    /// bump (prefix-sum) allocation.
    ///
    /// # Panics
    /// Panics (with a [`CapacityError::PoolTooLarge`] payload) if the total
    /// exceeds `u32::MAX` words; [`MemoryPool::try_from_requirements`] is
    /// the recoverable form.
    pub fn from_requirements(requirements: &[u32]) -> Self {
        Self::try_from_requirements(requirements).unwrap_or_else(|e| raise_capacity(e))
    }

    /// Fallible form of [`MemoryPool::from_requirements`]: returns
    /// [`CapacityError::PoolTooLarge`] instead of panicking when the total
    /// exceeds the 4G-word addressing limit.
    pub fn try_from_requirements(requirements: &[u32]) -> Result<Self, CapacityError> {
        let mut regions = Vec::with_capacity(requirements.len());
        let mut offset: u64 = 0;
        for &req in requirements {
            regions.push(PoolRegion {
                offset: offset as u32,
                len: req,
            });
            offset += req as u64;
        }
        if offset > u32::MAX as u64 {
            return Err(CapacityError::PoolTooLarge { words: offset });
        }
        Ok(Self {
            storage: vec![0u32; offset as usize],
            regions,
        })
    }

    /// Number of consumers (regions).
    pub fn num_regions(&self) -> usize {
        self.regions.len()
    }

    /// Total pool size in `u32` words.
    pub fn total_words(&self) -> usize {
        self.storage.len()
    }

    /// The region of consumer `i`.
    pub fn region(&self, i: usize) -> PoolRegion {
        self.regions[i]
    }

    /// Immutable view of consumer `i`'s region.
    pub fn slice(&self, i: usize) -> &[u32] {
        &self.storage[self.regions[i].range()]
    }

    /// Mutable view of consumer `i`'s region.
    pub fn slice_mut(&mut self, i: usize) -> &mut [u32] {
        let range = self.regions[i].range();
        &mut self.storage[range]
    }

    /// Mutable access to the whole backing storage together with the region
    /// table — what a kernel holding the raw pool pointer would see.
    pub fn storage_and_regions(&mut self) -> (&mut [u32], &[PoolRegion]) {
        (&mut self.storage, &self.regions)
    }

    /// Splits the pool into one disjoint mutable slice per region, in region
    /// order — the shape scoped worker threads borrow so every worker owns
    /// its region with no locks.
    pub fn split_regions(&mut self) -> Vec<&mut [u32]> {
        let mut out = Vec::with_capacity(self.regions.len());
        let mut rest: &mut [u32] = &mut self.storage;
        let mut consumed = 0usize;
        for region in &self.regions {
            debug_assert_eq!(region.offset as usize, consumed, "regions must be contiguous");
            let (head, tail) = rest.split_at_mut(region.len as usize);
            out.push(head);
            rest = tail;
            consumed += region.len as usize;
        }
        out
    }

    /// Verifies that no two regions overlap (invariant test hook).
    pub fn regions_disjoint(&self) -> bool {
        let mut sorted: Vec<PoolRegion> =
            self.regions.iter().copied().filter(|r| r.len > 0).collect();
        sorted.sort_by_key(|r| r.offset);
        sorted
            .windows(2)
            .all(|w| w[0].offset + w[0].len <= w[1].offset)
    }
}

/// The group-probing core shared by [`local_table`] and [`flat64`].
///
/// Control tags live in the region right after the two header words, one
/// byte per slot packed little-endian into `u32` words ([`GROUP`](probe::GROUP) slots = 4
/// tag words per group).  All group-scan primitives return a dense 16-bit
/// lane mask (bit `i` = slot `group * GROUP + i`), whichever backend
/// produced it.
pub mod probe {
    /// Slots scanned per probe step.  One SSE2 vector on `x86_64`; two `u64`
    /// SWAR halves elsewhere.  The region layout is identical either way.
    pub const GROUP: usize = 16;
    /// Tag words per group (4 tag bytes per `u32`).
    pub const GROUP_TAG_WORDS: usize = GROUP / 4;
    /// Control tag of an empty slot.
    pub const EMPTY_TAG: u8 = 0;

    /// Control tag of an occupied slot: the top 7 hash bits with the high
    /// bit forced so a stored tag can never equal [`EMPTY_TAG`].
    #[inline]
    pub fn tag_of(hash: u64) -> u8 {
        0x80 | (hash >> 57) as u8
    }

    /// Home group for `hash` among `num_groups` groups: a widening-multiply
    /// range reduction over the full 64-bit hash — no modulo in the hot
    /// path, and the high hash bits participate instead of being discarded.
    #[inline]
    pub fn group_of(hash: u64, num_groups: u32) -> u32 {
        (((hash as u128) * (num_groups as u128)) >> 64) as u32
    }

    const SWAR_LO: u64 = 0x0101_0101_0101_0101;
    const SWAR_HI: u64 = 0x8080_8080_8080_8080;

    /// Exact per-byte equality on 8 packed tags: returns an 8-bit lane mask
    /// of the bytes of `v` equal to `b`.  Uses the carry-free
    /// `((x & 0x7f…) + 0x7f…) | x` zero-byte test (no false positives, no
    /// cross-byte borrows), then compresses the per-byte high bits into a
    /// dense mask with a multiply.
    #[inline]
    fn swar_eq8(v: u64, b: u8) -> u32 {
        let x = v ^ (SWAR_LO.wrapping_mul(b as u64));
        let zero = !(((x & !SWAR_HI).wrapping_add(!SWAR_HI)) | x) & SWAR_HI;
        // Gather the per-byte high bits into a dense 8-bit mask: with the
        // match bits at positions 8i, the 0x0102…4080 multiplier places bit
        // i at position 56+i, and no two partial products ever collide.
        ((zero >> 7).wrapping_mul(0x0102_0408_1020_4080) >> 56) as u32
    }

    /// Portable 16-lane tag comparison (also the reference the SIMD path is
    /// tested against): bit `i` of the result = `tag(slot i) == b`.
    #[inline]
    pub fn eq_mask_swar(tags: &[u32], group: usize, b: u8) -> u32 {
        let base = group * GROUP_TAG_WORDS;
        let lo = tags[base] as u64 | (tags[base + 1] as u64) << 32;
        let hi = tags[base + 2] as u64 | (tags[base + 3] as u64) << 32;
        swar_eq8(lo, b) | swar_eq8(hi, b) << 8
    }

    /// 16-lane tag comparison: SSE2 on `x86_64` (always available there),
    /// SWAR elsewhere.
    #[cfg(target_arch = "x86_64")]
    #[inline]
    pub fn eq_mask(tags: &[u32], group: usize, b: u8) -> u32 {
        use core::arch::x86_64::{_mm_cmpeq_epi8, _mm_loadu_si128, _mm_movemask_epi8, _mm_set1_epi8};
        let base = group * GROUP_TAG_WORDS;
        debug_assert!(base + GROUP_TAG_WORDS <= tags.len());
        // SAFETY: the four tag words of `group` are in bounds (asserted
        // above); `_mm_loadu_si128` has no alignment requirement, and the
        // little-endian byte view of the `u32` tag words matches the
        // shift-based packing used by `set_tag`.
        unsafe {
            let ctrl = _mm_loadu_si128(tags.as_ptr().add(base).cast());
            _mm_movemask_epi8(_mm_cmpeq_epi8(ctrl, _mm_set1_epi8(b as i8))) as u32 & 0xFFFF
        }
    }

    /// 16-lane tag comparison: SSE2 on `x86_64`, SWAR elsewhere.
    #[cfg(not(target_arch = "x86_64"))]
    #[inline]
    pub fn eq_mask(tags: &[u32], group: usize, b: u8) -> u32 {
        eq_mask_swar(tags, group, b)
    }

    /// Lane mask of the occupied slots of a group.
    #[inline]
    pub fn occupied_mask(tags: &[u32], group: usize) -> u32 {
        !eq_mask(tags, group, EMPTY_TAG) & 0xFFFF
    }

    /// Reads the control tag of `slot`.
    #[inline]
    pub fn get_tag(tags: &[u32], slot: usize) -> u8 {
        (tags[slot / 4] >> (8 * (slot % 4))) as u8
    }

    /// Writes the control tag of `slot`.
    #[inline]
    pub fn set_tag(tags: &mut [u32], slot: usize, tag: u8) {
        let shift = 8 * (slot % 4);
        let word = &mut tags[slot / 4];
        *word = (*word & !(0xFFu32 << shift)) | (tag as u32) << shift;
    }
}

/// Shared region codec: layout, sizing, probing, iteration.  `VW` is the
/// number of `u32` value words per slot (1 for [`local_table`], 2 for
/// [`flat64`]).
///
/// Region layout (in `u32` words):
/// `[capacity, len, tags (capacity/4 words), keys (capacity words),
///   values (VW × capacity words)]`, capacity a multiple of
/// [`probe::GROUP`] (or 0).
mod table_core {
    use super::probe;

    pub const HEADER_WORDS: usize = 2;

    /// Slots allocated for `max_keys` distinct keys: 2× for the load
    /// factor, rounded up to whole groups; 0 for 0 keys.
    fn slots_for(max_keys: u32) -> u64 {
        if max_keys == 0 {
            return 0;
        }
        (2 * max_keys as u64).div_ceil(probe::GROUP as u64) * probe::GROUP as u64
    }

    /// Region length (in `u32` words) for a table holding `max_keys`
    /// distinct keys.  `words_required(0) == 0` — see the sizing contract.
    pub fn words_required<const VW: usize>(max_keys: u32) -> u32 {
        try_words_required::<VW>(max_keys).unwrap_or_else(|e| super::raise_capacity(e))
    }

    /// Fallible form of [`words_required`]: a table whose region would
    /// exceed the 4G-word addressing limit is a
    /// [`CapacityError::PoolTooLarge`](super::CapacityError) instead of a
    /// panic.  (A real check, not a debug one: silently truncating here
    /// would surface later as a bogus "bound violated" overflow panic.)
    pub fn try_words_required<const VW: usize>(
        max_keys: u32,
    ) -> Result<u32, super::CapacityError> {
        let slots = slots_for(max_keys);
        if slots == 0 {
            return Ok(0);
        }
        let words = HEADER_WORDS as u64 + slots / 4 + slots * (1 + VW as u64);
        if words > u32::MAX as u64 {
            return Err(super::CapacityError::PoolTooLarge { words });
        }
        Ok(words as u32)
    }

    /// Initialises a region as an empty table, deriving the capacity from
    /// the region length (the inverse of [`words_required`], rounded down
    /// to whole groups).  Zero-length and under-sized regions become legal
    /// zero-capacity tables.
    pub fn init<const VW: usize>(region: &mut [u32]) {
        // words = 2 + cap/4 + cap*(1+VW)  =>  cap = (words-2)*4 / (4*(1+VW)+1)
        let cap = if region.len() > HEADER_WORDS {
            let cap = (region.len() - HEADER_WORDS) * 4 / (4 * (1 + VW) + 1);
            cap / probe::GROUP * probe::GROUP
        } else {
            0
        };
        if region.is_empty() {
            return;
        }
        region[0] = cap as u32;
        if let Some(len) = region.get_mut(1) {
            *len = 0;
        }
        // Only the control tags need clearing: keys and values are written
        // before they are ever read (`insert_add` stores, not adds, on the
        // first touch of a slot).
        if cap > 0 {
            region[HEADER_WORDS..HEADER_WORDS + cap / 4].fill(0);
        }
    }

    /// Resets an initialised table to empty while keeping its capacity:
    /// clears the length and the control tags (`O(capacity / 4)` word
    /// writes, no capacity re-derivation).  For consumers that reuse one
    /// fixed-size region across consecutive accumulations; a consumer whose
    /// per-round bound *varies* should instead re-[`init`] a sub-slice
    /// sized for the round.  A no-op on zero-capacity regions.
    pub fn clear(region: &mut [u32]) {
        let cap = capacity(region) as usize;
        if region.len() > HEADER_WORDS {
            region[1] = 0;
        }
        if cap > 0 {
            region[HEADER_WORDS..HEADER_WORDS + cap / 4].fill(0);
        }
    }

    /// Capacity in slots (0 for empty/under-sized regions).
    #[inline]
    pub fn capacity(region: &[u32]) -> u32 {
        if region.len() > HEADER_WORDS {
            region[0]
        } else {
            0
        }
    }

    /// Number of distinct keys stored.
    #[inline]
    pub fn len(region: &[u32]) -> u32 {
        if region.len() > HEADER_WORDS {
            region[1]
        } else {
            0
        }
    }

    #[inline]
    fn tags_end(cap: usize) -> usize {
        HEADER_WORDS + cap / 4
    }

    #[inline]
    fn key_base(cap: usize) -> usize {
        tags_end(cap)
    }

    #[inline]
    fn value_base<const VW: usize>(cap: usize, slot: usize) -> usize {
        tags_end(cap) + cap + VW * slot
    }

    /// Finds `key`'s slot, inserting it if absent.  Returns the word index
    /// of the slot's value area and whether the slot is fresh.
    ///
    /// # Panics
    /// Panics (payload downcastable to
    /// [`CapacityError`](super::CapacityError)) on zero capacity, and when
    /// the probe wraps the whole table (table full) — both mean the
    /// consumer's sizing bound was violated.  [`try_find_or_insert`] is the
    /// recoverable form.
    pub fn find_or_insert<const VW: usize>(region: &mut [u32], key: u32) -> (usize, bool) {
        try_find_or_insert::<VW>(region, key).unwrap_or_else(|e| super::raise_capacity(e))
    }

    /// Fallible form of [`find_or_insert`]: capacity exhaustion is an `Err`
    /// instead of a panic, so the fine-grained engine can degrade a query
    /// rather than abort it.
    pub fn try_find_or_insert<const VW: usize>(
        region: &mut [u32],
        key: u32,
    ) -> Result<(usize, bool), super::CapacityError> {
        let cap = capacity(region) as usize;
        // Fault-injection site: a simulated capacity exhaustion on the next
        // reserve, without having to actually fill a table.
        failpoints::fail_point!(
            "arena-reserve",
            return Err(super::CapacityError::TableOverflow {
                key,
                capacity: cap as u32,
                len: len(region),
            })
        );
        if cap == 0 {
            return Err(super::CapacityError::ZeroCapacity { key });
        }
        let num_groups = (cap / probe::GROUP) as u32;
        let hash = super::mix64(key as u64);
        let tag = probe::tag_of(hash);
        let mut g = probe::group_of(hash, num_groups) as usize;
        let (tags, rest) = region[HEADER_WORDS..].split_at_mut(cap / 4);
        let keys = &mut rest[..cap];
        // Wrapped-probe detection: a well-sized table terminates at an
        // empty lane long before `num_groups` steps.
        for _ in 0..num_groups {
            let mut eq = probe::eq_mask(tags, g, tag);
            while eq != 0 {
                let slot = g * probe::GROUP + eq.trailing_zeros() as usize;
                if keys[slot] == key {
                    return Ok((value_base::<VW>(cap, slot), false));
                }
                eq &= eq - 1;
            }
            let empty = probe::eq_mask(tags, g, probe::EMPTY_TAG);
            if empty != 0 {
                let slot = g * probe::GROUP + empty.trailing_zeros() as usize;
                probe::set_tag(tags, slot, tag);
                keys[slot] = key;
                region[1] += 1;
                return Ok((value_base::<VW>(cap, slot), true));
            }
            g += 1;
            if g == num_groups as usize {
                g = 0;
            }
        }
        Err(super::CapacityError::TableOverflow {
            key,
            capacity: cap as u32,
            len: len(region),
        })
    }

    /// Finds `key`'s slot without inserting.  Returns the word index of the
    /// slot's value area.
    pub fn find<const VW: usize>(region: &[u32], key: u32) -> Option<usize> {
        let cap = capacity(region) as usize;
        if cap == 0 {
            return None;
        }
        let num_groups = (cap / probe::GROUP) as u32;
        let hash = super::mix64(key as u64);
        let tag = probe::tag_of(hash);
        let mut g = probe::group_of(hash, num_groups) as usize;
        let tags = &region[HEADER_WORDS..tags_end(cap)];
        let keys = &region[key_base(cap)..key_base(cap) + cap];
        for _ in 0..num_groups {
            let mut eq = probe::eq_mask(tags, g, tag);
            while eq != 0 {
                let slot = g * probe::GROUP + eq.trailing_zeros() as usize;
                if keys[slot] == key {
                    return Some(value_base::<VW>(cap, slot));
                }
                eq &= eq - 1;
            }
            if probe::eq_mask(tags, g, probe::EMPTY_TAG) != 0 {
                return None;
            }
            g += 1;
            if g == num_groups as usize {
                g = 0;
            }
        }
        None
    }

    /// Iterates over the occupied slots as `(key, value word index)` pairs,
    /// skipping empty groups with one 16-lane tag test each (the compact
    /// merge-scan of the tentpole: sparse tables cost `O(capacity/16)`
    /// instead of a full sweep).
    pub fn iter<const VW: usize>(
        region: &[u32],
    ) -> impl Iterator<Item = (u32, usize)> + '_ {
        let cap = capacity(region) as usize;
        let num_groups = cap / probe::GROUP;
        let tags_end = tags_end(cap);
        (0..num_groups).flat_map(move |g| {
            let mut occ = probe::occupied_mask(&region[HEADER_WORDS..tags_end], g);
            std::iter::from_fn(move || {
                if occ == 0 {
                    return None;
                }
                let slot = g * probe::GROUP + occ.trailing_zeros() as usize;
                occ &= occ - 1;
                Some((region[key_base(cap) + slot], value_base::<VW>(cap, slot)))
            })
        })
    }
}

/// Operations on a private `u32 → u32` table stored inside a pool region.
///
/// Group-probing open addressing over 1-word values; see the crate docs for
/// the shared layout and the sizing contract (`words_required(0) == 0`,
/// zero-capacity tables are no-ops except for `insert_add`, full tables
/// panic instead of spinning).
pub mod local_table {
    use super::table_core;

    const VW: usize = 1;

    /// Fixed header length in words (capacity, size).
    pub const HEADER_WORDS: u32 = table_core::HEADER_WORDS as u32;

    /// Number of `u32` words a table for `max_keys` distinct keys requires
    /// (0 for 0 keys).
    pub fn words_required(max_keys: u32) -> u32 {
        table_core::words_required::<VW>(max_keys)
    }

    /// Fallible form of [`words_required`]: an over-4G-words table is a
    /// [`CapacityError`](super::CapacityError) instead of a panic.
    pub fn try_words_required(max_keys: u32) -> Result<u32, super::CapacityError> {
        table_core::try_words_required::<VW>(max_keys)
    }

    /// Initialises a region as an empty table (no-op on zero-length
    /// regions).
    pub fn init(region: &mut [u32]) {
        table_core::init::<VW>(region);
    }

    /// Empties an initialised table without re-deriving its capacity — the
    /// cheap way to reuse one region for many consecutive accumulations.
    pub fn clear(region: &mut [u32]) {
        table_core::clear(region);
    }

    /// Adds `count` to `key`'s entry (inserting it if absent).
    ///
    /// # Panics
    /// Panics (payload downcastable to [`CapacityError`](super::CapacityError))
    /// if the table has zero capacity or is full — the bounds computed
    /// during the initialization phase (`genLocTblBoundKernel`) guarantee
    /// this cannot happen for well-formed inputs.  The simulated-GPU
    /// kernels keep this thin wrapper; recoverable consumers use
    /// [`try_insert_add`].
    pub fn insert_add(region: &mut [u32], key: u32, count: u32) {
        let (base, fresh) = table_core::find_or_insert::<VW>(region, key);
        if fresh {
            region[base] = count;
        } else {
            region[base] += count;
        }
    }

    /// Fallible form of [`insert_add`]: a violated capacity bound is a
    /// [`CapacityError`](super::CapacityError) instead of a panic.
    pub fn try_insert_add(
        region: &mut [u32],
        key: u32,
        count: u32,
    ) -> Result<(), super::CapacityError> {
        let (base, fresh) = table_core::try_find_or_insert::<VW>(region, key)?;
        if fresh {
            region[base] = count;
        } else {
            region[base] += count;
        }
        Ok(())
    }

    /// Number of distinct keys stored.
    pub fn len(region: &[u32]) -> u32 {
        table_core::len(region)
    }

    /// Iterates over `(key, count)` pairs in slot order.
    pub fn iter(region: &[u32]) -> impl Iterator<Item = (u32, u32)> + '_ {
        table_core::iter::<VW>(region).map(|(k, base)| (k, region[base]))
    }

    /// Looks up the count stored for `key`.
    pub fn get(region: &[u32], key: u32) -> Option<u32> {
        table_core::find::<VW>(region, key).map(|base| region[base])
    }
}

/// Operations on a private `u32 → u64` table stored inside a pool region.
///
/// Same group-probing design as [`local_table`], but values are 64-bit (two
/// words, little-endian lo/hi) so the fine-grained CPU engine can accumulate
/// analytics counts (word frequency × rule weight) without overflow.
pub mod flat64 {
    use super::table_core;

    const VW: usize = 2;

    /// Fixed header length in words (capacity, size).
    pub const HEADER_WORDS: u32 = table_core::HEADER_WORDS as u32;

    /// Number of `u32` words a table for `max_keys` distinct keys requires
    /// (0 for 0 keys).
    pub fn words_required(max_keys: u32) -> u32 {
        table_core::words_required::<VW>(max_keys)
    }

    /// Fallible form of [`words_required`]: an over-4G-words table is a
    /// [`CapacityError`](super::CapacityError) instead of a panic.
    pub fn try_words_required(max_keys: u32) -> Result<u32, super::CapacityError> {
        table_core::try_words_required::<VW>(max_keys)
    }

    /// Initialises a region as an empty table (no-op on zero-length
    /// regions).
    pub fn init(region: &mut [u32]) {
        table_core::init::<VW>(region);
    }

    /// Empties an initialised table without re-deriving its capacity — the
    /// cheap way to reuse one region for many consecutive accumulations.
    ///
    /// ```
    /// let mut region = vec![0u32; arena::flat64::words_required(4) as usize];
    /// arena::flat64::init(&mut region);
    /// arena::flat64::insert_add(&mut region, 7, 1);
    /// arena::flat64::clear(&mut region);
    /// assert_eq!(arena::flat64::len(&region), 0);
    /// assert_eq!(arena::flat64::get(&region, 7), None);
    /// ```
    pub fn clear(region: &mut [u32]) {
        table_core::clear(region);
    }

    #[inline]
    fn read_value(region: &[u32], base: usize) -> u64 {
        region[base] as u64 | (region[base + 1] as u64) << 32
    }

    #[inline]
    fn write_value(region: &mut [u32], base: usize, value: u64) {
        region[base] = value as u32;
        region[base + 1] = (value >> 32) as u32;
    }

    /// Adds `count` to `key`'s entry (inserting it if absent).
    ///
    /// # Panics
    /// Panics (payload downcastable to [`CapacityError`](super::CapacityError))
    /// if the table has zero capacity or is full — capacity bounds are
    /// computed during the initialization phase exactly as on the GPU.
    /// Recoverable consumers use [`try_insert_add`].
    pub fn insert_add(region: &mut [u32], key: u32, count: u64) {
        let (base, fresh) = table_core::find_or_insert::<VW>(region, key);
        let value = if fresh {
            count
        } else {
            read_value(region, base) + count
        };
        write_value(region, base, value);
    }

    /// Fallible form of [`insert_add`]: a violated capacity bound is a
    /// [`CapacityError`](super::CapacityError) instead of a panic.
    pub fn try_insert_add(
        region: &mut [u32],
        key: u32,
        count: u64,
    ) -> Result<(), super::CapacityError> {
        let (base, fresh) = table_core::try_find_or_insert::<VW>(region, key)?;
        let value = if fresh {
            count
        } else {
            read_value(region, base) + count
        };
        write_value(region, base, value);
        Ok(())
    }

    /// Number of distinct keys stored.
    pub fn len(region: &[u32]) -> u32 {
        table_core::len(region)
    }

    /// Iterates over `(key, value)` pairs in slot order.
    pub fn iter(region: &[u32]) -> impl Iterator<Item = (u32, u64)> + '_ {
        table_core::iter::<VW>(region).map(|(k, base)| (k, read_value(region, base)))
    }

    /// Looks up the value stored for `key`.
    pub fn get(region: &[u32], key: u32) -> Option<u64> {
        table_core::find::<VW>(region, key).map(|base| read_value(region, base))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pool_regions_follow_requirements() {
        let pool = MemoryPool::from_requirements(&[4, 0, 8, 2]);
        assert_eq!(pool.num_regions(), 4);
        assert_eq!(pool.total_words(), 14);
        assert_eq!(pool.region(0), PoolRegion { offset: 0, len: 4 });
        assert_eq!(pool.region(1), PoolRegion { offset: 4, len: 0 });
        assert_eq!(pool.region(2), PoolRegion { offset: 4, len: 8 });
        assert_eq!(pool.region(3), PoolRegion { offset: 12, len: 2 });
        assert!(pool.regions_disjoint());
    }

    #[test]
    fn split_regions_yields_disjoint_mut_slices() {
        let mut pool = MemoryPool::from_requirements(&[3, 0, 2]);
        {
            let mut slices = pool.split_regions();
            assert_eq!(slices.len(), 3);
            assert_eq!(slices[0].len(), 3);
            assert_eq!(slices[1].len(), 0);
            assert_eq!(slices[2].len(), 2);
            slices[0][1] = 7;
            slices[2][0] = 9;
        }
        assert_eq!(pool.slice(0), &[0, 7, 0]);
        assert_eq!(pool.slice(2), &[9, 0]);
    }

    #[test]
    fn empty_pool_is_fine() {
        let mut pool = MemoryPool::from_requirements(&[]);
        assert_eq!(pool.num_regions(), 0);
        assert_eq!(pool.total_words(), 0);
        assert!(pool.split_regions().is_empty());
    }

    #[test]
    fn local_table_roundtrip() {
        let mut region = vec![0u32; local_table::words_required(8) as usize];
        local_table::init(&mut region);
        local_table::insert_add(&mut region, 5, 2);
        local_table::insert_add(&mut region, 9, 1);
        local_table::insert_add(&mut region, 5, 3);
        assert_eq!(local_table::get(&region, 5), Some(5));
        assert_eq!(local_table::get(&region, 9), Some(1));
        assert_eq!(local_table::get(&region, 7), None);
        assert_eq!(local_table::len(&region), 2);
    }

    #[test]
    fn flat64_holds_values_beyond_32_bits() {
        let mut region = vec![0u32; flat64::words_required(16) as usize];
        flat64::init(&mut region);
        let big = 7 * (u32::MAX as u64);
        flat64::insert_add(&mut region, 3, big);
        flat64::insert_add(&mut region, 3, 1);
        flat64::insert_add(&mut region, 100, 42);
        assert_eq!(flat64::get(&region, 3), Some(big + 1));
        assert_eq!(flat64::get(&region, 100), Some(42));
        assert_eq!(flat64::get(&region, 4), None);
        assert_eq!(flat64::len(&region), 2);
        let mut pairs: Vec<(u32, u64)> = flat64::iter(&region).collect();
        pairs.sort_unstable();
        assert_eq!(pairs, vec![(3, big + 1), (100, 42)]);
    }

    #[test]
    fn flat64_capacity_bound_is_honoured() {
        let mut region = vec![0u32; flat64::words_required(32) as usize];
        flat64::init(&mut region);
        for k in 0..32u32 {
            flat64::insert_add(&mut region, 1000 + k, k as u64 + 1);
        }
        assert_eq!(flat64::len(&region), 32);
        for k in 0..32u32 {
            assert_eq!(flat64::get(&region, 1000 + k), Some(k as u64 + 1));
        }
    }

    #[test]
    fn clear_resets_tables_for_reuse() {
        let mut region = vec![0u32; flat64::words_required(8) as usize];
        flat64::init(&mut region);
        for k in 0..8u32 {
            flat64::insert_add(&mut region, k, k as u64 + 1);
        }
        let cap = region[0];
        flat64::clear(&mut region);
        assert_eq!(region[0], cap, "clear must keep the capacity");
        assert_eq!(flat64::len(&region), 0);
        assert_eq!(flat64::iter(&region).count(), 0);
        for k in 0..8u32 {
            assert_eq!(flat64::get(&region, k), None);
        }
        flat64::insert_add(&mut region, 3, 9);
        assert_eq!(flat64::get(&region, 3), Some(9));

        let mut small = vec![0u32; local_table::words_required(2) as usize];
        local_table::init(&mut small);
        local_table::insert_add(&mut small, 11, 4);
        local_table::clear(&mut small);
        assert_eq!(local_table::len(&small), 0);

        // Zero-capacity clears are legal no-ops, like init.
        let mut empty: Vec<u32> = Vec::new();
        local_table::clear(&mut empty);
        flat64::clear(&mut empty);
    }

    #[test]
    fn zero_capacity_tables_are_legal_no_ops() {
        assert_eq!(local_table::words_required(0), 0);
        assert_eq!(flat64::words_required(0), 0);
        let mut region: Vec<u32> = Vec::new();
        local_table::init(&mut region);
        flat64::init(&mut region);
        assert_eq!(local_table::len(&region), 0);
        assert_eq!(flat64::len(&region), 0);
        assert_eq!(local_table::iter(&region).count(), 0);
        assert_eq!(flat64::iter(&region).count(), 0);
        assert_eq!(local_table::get(&region, 7), None);
        assert_eq!(flat64::get(&region, 7), None);
    }

    /// Extracts the typed capacity payload from a caught panic.
    fn capacity_payload(err: Box<dyn std::any::Any + Send>) -> CapacityError {
        *err.downcast::<CapacityError>()
            .expect("capacity panics carry a CapacityError payload")
    }

    #[test]
    fn local_table_zero_capacity_insert_panics_with_typed_payload() {
        let err = std::panic::catch_unwind(|| {
            let mut region: Vec<u32> = Vec::new();
            local_table::init(&mut region);
            local_table::insert_add(&mut region, 1, 1);
        })
        .expect_err("zero-capacity insert must panic");
        let err = capacity_payload(err);
        assert_eq!(err, CapacityError::ZeroCapacity { key: 1 });
        assert!(err.to_string().contains("zero-capacity table"));
    }

    #[test]
    fn flat64_zero_capacity_insert_panics_with_typed_payload() {
        let err = std::panic::catch_unwind(|| {
            let mut region: Vec<u32> = Vec::new();
            flat64::init(&mut region);
            flat64::insert_add(&mut region, 1, 1);
        })
        .expect_err("zero-capacity insert must panic");
        assert_eq!(capacity_payload(err), CapacityError::ZeroCapacity { key: 1 });
    }

    #[test]
    fn try_insert_add_reports_capacity_errors_without_panicking() {
        let mut empty: Vec<u32> = Vec::new();
        local_table::init(&mut empty);
        assert_eq!(
            local_table::try_insert_add(&mut empty, 9, 1),
            Err(CapacityError::ZeroCapacity { key: 9 })
        );
        flat64::init(&mut empty);
        assert_eq!(
            flat64::try_insert_add(&mut empty, 9, 1),
            Err(CapacityError::ZeroCapacity { key: 9 })
        );

        // Overfill: the wrapped probe reports a typed overflow.
        let mut region = vec![0u32; flat64::words_required(8) as usize];
        flat64::init(&mut region);
        let cap = region[0];
        for k in 0..cap {
            flat64::try_insert_add(&mut region, k * 31 + 7, 1).expect("within capacity");
        }
        let err = flat64::try_insert_add(&mut region, cap * 31 + 7, 1)
            .expect_err("one past capacity must overflow");
        assert_eq!(
            err,
            CapacityError::TableOverflow {
                key: cap * 31 + 7,
                capacity: cap,
                len: cap
            }
        );
        // The fallible path must leave the table intact and readable.
        assert_eq!(flat64::len(&region), cap);
        assert_eq!(flat64::get(&region, 7), Some(1));
    }

    #[test]
    fn try_from_requirements_rejects_over_4g_pools() {
        let reqs = vec![u32::MAX, u32::MAX];
        let err = MemoryPool::try_from_requirements(&reqs).expect_err("9G-word pool");
        assert_eq!(
            err,
            CapacityError::PoolTooLarge {
                words: 2 * u32::MAX as u64
            }
        );
        assert!(err.to_string().contains("shard the dataset"));
        assert!(matches!(
            flat64::try_words_required(u32::MAX),
            Err(CapacityError::PoolTooLarge { .. })
        ));
        assert!(matches!(
            local_table::try_words_required(u32::MAX),
            Err(CapacityError::PoolTooLarge { .. })
        ));
    }

    /// Fills a table to its *entire* slot capacity (beyond the nominal 2×
    /// load-factor bound): every slot must be usable, lookups must stay
    /// correct at 100% fill, and one further insert must trip the
    /// wrapped-probe overflow detection rather than spinning forever.
    #[test]
    fn exactly_full_local_table_still_works() {
        let mut region = vec![0u32; local_table::words_required(24) as usize];
        local_table::init(&mut region);
        let cap = region[0];
        assert!(cap >= 48);
        for k in 0..cap {
            local_table::insert_add(&mut region, k * 31 + 7, k + 1);
        }
        assert_eq!(local_table::len(&region), cap);
        for k in 0..cap {
            assert_eq!(local_table::get(&region, k * 31 + 7), Some(k + 1));
        }
        assert_eq!(local_table::get(&region, 1), None, "absent key on a full table");
        assert_eq!(local_table::iter(&region).count(), cap as usize);
    }

    #[test]
    fn local_table_overflow_panics_with_context() {
        let err = std::panic::catch_unwind(|| {
            let mut region = vec![0u32; local_table::words_required(8) as usize];
            local_table::init(&mut region);
            let cap = region[0];
            for k in 0..=cap {
                local_table::insert_add(&mut region, k * 31 + 7, 1);
            }
        })
        .expect_err("overfilling must panic");
        let err = capacity_payload(err);
        assert!(matches!(err, CapacityError::TableOverflow { .. }));
        assert!(err.to_string().contains("table overflow"));
    }

    #[test]
    fn flat64_overflow_panics_with_context() {
        let err = std::panic::catch_unwind(|| {
            let mut region = vec![0u32; flat64::words_required(8) as usize];
            flat64::init(&mut region);
            let cap = region[0];
            for k in 0..=cap {
                flat64::insert_add(&mut region, k * 31 + 7, 1);
            }
        })
        .expect_err("overfilling must panic");
        assert!(matches!(
            capacity_payload(err),
            CapacityError::TableOverflow { .. }
        ));
    }

    #[test]
    fn probe_simd_matches_swar_reference() {
        // One group of 16 tags with repeats, empties and high-bit values.
        let bytes: [u8; 16] = [
            0x80, 0x00, 0xA5, 0xFF, 0x80, 0x00, 0x91, 0xA5, 0x00, 0x80, 0xFF, 0xC3, 0x00, 0x00,
            0xA5, 0x80,
        ];
        let mut tags = [0u32; probe::GROUP_TAG_WORDS];
        for (slot, &b) in bytes.iter().enumerate() {
            probe::set_tag(&mut tags, slot, b);
        }
        for (slot, &b) in bytes.iter().enumerate() {
            assert_eq!(probe::get_tag(&tags, slot), b, "slot {slot}");
        }
        for needle in [0x00u8, 0x80, 0xA5, 0xFF, 0x91, 0xC3, 0x81] {
            let expected: u32 = bytes
                .iter()
                .enumerate()
                .filter(|&(_, &b)| b == needle)
                .map(|(i, _)| 1u32 << i)
                .sum();
            assert_eq!(probe::eq_mask(&tags, 0, needle), expected, "simd {needle:#x}");
            assert_eq!(
                probe::eq_mask_swar(&tags, 0, needle),
                expected,
                "swar {needle:#x}"
            );
        }
        assert_eq!(
            probe::occupied_mask(&tags, 0),
            !probe::eq_mask_swar(&tags, 0, 0) & 0xFFFF
        );
    }

    #[test]
    fn probe_tags_are_never_empty_and_groups_in_range() {
        for k in 0..10_000u64 {
            let h = mix64(k);
            assert_ne!(probe::tag_of(h), probe::EMPTY_TAG);
            assert!(probe::group_of(h, 7) < 7);
        }
    }

    #[test]
    fn mix64_avalanches_low_bits() {
        // Keys differing only in high bits must land in different buckets
        // often enough; sanity-check a few.
        let a = mix64(1 << 40) & 0xff;
        let b = mix64(2 << 40) & 0xff;
        let c = mix64(3 << 40) & 0xff;
        assert!(!(a == b && b == c), "low bits must depend on high input bits");
    }
}
