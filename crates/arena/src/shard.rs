//! Append-and-compact shard buffers for lock-free sharded merges.
//!
//! The fine-grained engines accumulate per-worker partial results and merge
//! them by hash shard: every key shard is owned by exactly one merge worker,
//! so the merges need no synchronization.  Earlier revisions materialised the
//! per-worker shards as hash maps, paying a probe per *occurrence* on the
//! traversal hot path and another per entry during the merge.  A [`ShardBuf`]
//! replaces that with the design of the posting accumulators (append with
//! duplicates allowed, compact by sort + fold when the buffer doubles): the
//! hot path is a bounds-checked vector push, memory stays proportional to
//! the *distinct* keys the worker owns (amortised), and the merge is a single
//! sort + fold per shard over data that is already mostly sorted runs.
//!
//! The merge contract:
//!
//! 1. Workers append entries (duplicates allowed, any order) into one
//!    `ShardBuf` per shard, routing each entry by its key hash (the caller's
//!    `shard_of`).  Buffers self-compact, so a worker never holds more than
//!    ~2× its distinct entries past the compaction floor.
//! 2. The per-shard buffers of all workers are handed to that shard's merge
//!    worker, which calls [`ShardBuf::merge`] once: the result is sorted by
//!    key and contains **exactly one entry per distinct key**, with equal-key
//!    entries combined by [`ShardEntry::absorb`].
//! 3. Because shards partition the key space, concatenating (or iterating)
//!    the per-shard merge outputs yields every key exactly once.
//!
//! ```
//! use arena::shard::{CountEntry, ShardBuf};
//!
//! // Two workers accumulate counts for the same shard.
//! let mut a = ShardBuf::default();
//! a.push(CountEntry::new(7u32, 2));
//! a.push(CountEntry::new(3, 1));
//! let mut b = ShardBuf::default();
//! b.push(CountEntry::new(7, 5));
//!
//! let merged = ShardBuf::merge(vec![a, b]);
//! let pairs: Vec<(u32, u64)> = merged.into_iter().map(|e| (e.key, e.count)).collect();
//! assert_eq!(pairs, vec![(3, 1), (7, 7)]);
//! ```

/// An entry a [`ShardBuf`] can sort and fold: a key plus a combine rule for
/// equal-key duplicates.
pub trait ShardEntry {
    /// Sort/fold key.  Entries with equal keys are combined.
    type Key: Ord;

    /// The entry's key.
    fn key(&self) -> &Self::Key;

    /// Folds `other` (an equal-key duplicate about to be discarded) into
    /// `self`.
    fn absorb(&mut self, other: &mut Self);
}

/// A counted entry: equal keys sum their counts (word counts, sequence
/// counts, per-file occurrence totals).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CountEntry<K> {
    /// The key counted.
    pub key: K,
    /// Accumulated count.
    pub count: u64,
}

impl<K> CountEntry<K> {
    /// A new entry carrying `count` occurrences of `key`.
    #[inline]
    pub fn new(key: K, count: u64) -> Self {
        Self { key, count }
    }
}

impl<K: Ord> ShardEntry for CountEntry<K> {
    type Key = K;
    #[inline]
    fn key(&self) -> &K {
        &self.key
    }
    #[inline]
    fn absorb(&mut self, other: &mut Self) {
        self.count += other.count;
    }
}

/// A set-membership entry: equal keys collapse to one (posting lists, where
/// only *whether* a (word, file) pair occurred matters).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SetEntry<K> {
    /// The key witnessed.
    pub key: K,
}

impl<K> SetEntry<K> {
    /// A new membership witness for `key`.
    #[inline]
    pub fn new(key: K) -> Self {
        Self { key }
    }
}

impl<K: Ord> ShardEntry for SetEntry<K> {
    type Key = K;
    #[inline]
    fn key(&self) -> &K {
        &self.key
    }
    #[inline]
    fn absorb(&mut self, _other: &mut Self) {}
}

/// A bitmask entry: equal keys OR their masks.  Used for posting lists — the
/// key is `(word, file_block)` and the mask holds one bit per file of the
/// 64-file block, so a rule occurring in many files costs one entry per
/// (word, block) instead of one per (word, file).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MaskEntry<K> {
    /// The key the mask is accumulated under.
    pub key: K,
    /// Accumulated bitmask.
    pub mask: u64,
}

impl<K> MaskEntry<K> {
    /// A new entry contributing `mask` to `key`.
    #[inline]
    pub fn new(key: K, mask: u64) -> Self {
        Self { key, mask }
    }
}

impl<K: Ord> ShardEntry for MaskEntry<K> {
    type Key = K;
    #[inline]
    fn key(&self) -> &K {
        &self.key
    }
    #[inline]
    fn absorb(&mut self, other: &mut Self) {
        self.mask |= other.mask;
    }
}

/// An append-mostly accumulation buffer for one hash shard of one worker.
///
/// Entries are pushed with duplicates allowed — an append per occurrence is
/// far cheaper than a hash probe per occurrence — and the buffer compacts
/// itself (sort + fold in place) whenever it doubles past its last compacted
/// size, keeping worker memory proportional to the distinct keys it owns.
#[derive(Debug, Clone)]
pub struct ShardBuf<T> {
    entries: Vec<T>,
    compact_at: usize,
}

impl<T> Default for ShardBuf<T> {
    fn default() -> Self {
        Self {
            entries: Vec::new(),
            compact_at: 0,
        }
    }
}

impl<T: ShardEntry> ShardBuf<T> {
    /// Buffers below this never self-compact: the merge folds them in one
    /// sort anyway, and re-sorting small growing buffers costs more than it
    /// saves.
    pub const COMPACT_FLOOR: usize = 4096;

    /// Appends one entry (duplicates allowed).
    #[inline]
    pub fn push(&mut self, entry: T) {
        self.entries.push(entry);
        if self.entries.len() >= self.compact_at.max(Self::COMPACT_FLOOR) {
            self.compact();
            self.compact_at = 2 * self.entries.len();
        }
    }

    /// Number of buffered entries (duplicates included until the next
    /// compaction).
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the buffer holds no entries.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Sorts by key and folds equal-key runs in place with
    /// [`ShardEntry::absorb`].
    pub fn compact(&mut self) {
        sort_fold(&mut self.entries);
    }

    /// Compacts and returns the entries, sorted by key with one entry per
    /// distinct key.
    pub fn into_sorted(mut self) -> Vec<T> {
        self.compact();
        self.entries
    }

    /// Merges the per-worker buffers of one shard: one sort + fold over all
    /// pieces, returning the shard's entries sorted by key with exactly one
    /// entry per distinct key (see the module docs for the full contract).
    pub fn merge(pieces: Vec<ShardBuf<T>>) -> Vec<T> {
        // Fault-injection site: a worker panicking mid-merge-fold, the
        // hardest point for a dispatcher to recover from (partial shard
        // state on other workers).
        failpoints::fail_point!("merge-fold");
        let mut out: Vec<T> = Vec::with_capacity(pieces.iter().map(ShardBuf::len).sum());
        for piece in pieces {
            out.extend(piece.entries);
        }
        sort_fold(&mut out);
        out
    }
}

/// Sorts `entries` by key and folds equal-key runs in place with
/// [`ShardEntry::absorb`] — the primitive [`ShardBuf`] compaction and merge
/// are built on, exposed for callers folding scratch vectors of their own.
pub fn sort_fold<T: ShardEntry>(entries: &mut Vec<T>) {
    entries.sort_unstable_by(|a, b| a.key().cmp(b.key()));
    entries.dedup_by(|cur, prev| {
        if cur.key() == prev.key() {
            prev.absorb(cur);
            true
        } else {
            false
        }
    });
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counts_fold_across_pushes_and_pieces() {
        let mut a = ShardBuf::default();
        for _ in 0..3 {
            a.push(CountEntry::new(5u64, 2));
        }
        a.push(CountEntry::new(1, 1));
        let mut b = ShardBuf::default();
        b.push(CountEntry::new(5, 4));
        let merged = ShardBuf::merge(vec![a, b]);
        assert_eq!(
            merged,
            vec![CountEntry::new(1, 1), CountEntry::new(5, 10)]
        );
    }

    #[test]
    fn set_entries_dedup() {
        let mut buf = ShardBuf::default();
        for f in [2u32, 1, 2, 2, 1] {
            buf.push(SetEntry::new((7u32, f)));
        }
        assert_eq!(
            buf.into_sorted(),
            vec![SetEntry::new((7, 1)), SetEntry::new((7, 2))]
        );
    }

    #[test]
    fn self_compaction_bounds_memory() {
        let mut buf = ShardBuf::default();
        // Push far more duplicates than the floor: the buffer must keep
        // folding them back down instead of growing linearly.
        for i in 0..(10 * ShardBuf::<CountEntry<u64>>::COMPACT_FLOOR) {
            buf.push(CountEntry::new((i % 7) as u64, 1));
        }
        assert!(
            buf.len() <= ShardBuf::<CountEntry<u64>>::COMPACT_FLOOR + 7,
            "buffer of 7 distinct keys grew to {} entries",
            buf.len()
        );
        let total: u64 = buf.into_sorted().iter().map(|e| e.count).sum();
        assert_eq!(total, 10 * ShardBuf::<CountEntry<u64>>::COMPACT_FLOOR as u64);
    }

    #[test]
    fn masks_or_together() {
        let mut a = ShardBuf::default();
        a.push(MaskEntry::new((4u32, 0u32), 0b0001));
        a.push(MaskEntry::new((4, 0), 0b0100));
        let mut b = ShardBuf::default();
        b.push(MaskEntry::new((4, 1), 0b1000));
        b.push(MaskEntry::new((4, 0), 0b0001));
        let merged = ShardBuf::merge(vec![a, b]);
        assert_eq!(
            merged,
            vec![MaskEntry::new((4, 0), 0b0101), MaskEntry::new((4, 1), 0b1000)]
        );
    }

    #[test]
    fn merge_of_empty_pieces_is_empty() {
        let merged = ShardBuf::<CountEntry<u32>>::merge(vec![
            ShardBuf::default(),
            ShardBuf::default(),
        ]);
        assert!(merged.is_empty());
        let empty = ShardBuf::<CountEntry<u32>>::default();
        assert!(empty.is_empty());
        assert_eq!(empty.into_sorted(), vec![]);
    }

    #[test]
    fn non_copy_keys_are_supported() {
        // Sequence keys above the packable length are owned vectors.
        let mut buf = ShardBuf::default();
        buf.push(CountEntry::new(vec![1u32, 2, 3], 1));
        buf.push(CountEntry::new(vec![1, 2, 3], 2));
        buf.push(CountEntry::new(vec![0, 9], 5));
        let merged = ShardBuf::merge(vec![buf]);
        assert_eq!(
            merged,
            vec![
                CountEntry::new(vec![0, 9], 5),
                CountEntry::new(vec![1, 2, 3], 3)
            ]
        );
    }
}
