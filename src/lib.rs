//! # g-tadoc-repro
//!
//! Umbrella crate of the G-TADOC reproduction (ICDE 2021: *"G-TADOC: Enabling
//! Efficient GPU-Based Text Analytics without Decompression"*).
//!
//! It re-exports the workspace crates under one roof so examples, integration
//! tests, and downstream users can depend on a single crate:
//!
//! * [`sequitur`] — Sequitur grammar compression and the TADOC archive format;
//! * [`tadoc`] — the CPU TADOC baseline (six analytics tasks, sequential and
//!   coarse-grained parallel), the fine-grained parallel CPU engine
//!   (level-synchronized DAG traversal with arena-backed tables), and the
//!   CPU/cluster cost models;
//! * [`gpu_sim`] — the SIMT GPU simulator substrate (Pascal/Volta/Turing);
//! * [`gtadoc`] — G-TADOC itself: fine-grained thread scheduling, GPU memory
//!   pool, thread-safe hash tables, head/tail sequence support, top-down and
//!   bottom-up traversals, and the execution engine;
//! * [`datagen`] — synthetic datasets shaped like the paper's corpora A–E;
//! * [`uncompressed`] — baselines over the raw (decompressed) token streams.
//!
//! ## Quick start
//!
//! ```
//! use g_tadoc_repro::prelude::*;
//!
//! // 1. Compress a small corpus with TADOC (Sequitur-based grammar compression).
//! let corpus = vec![
//!     ("a.txt".to_string(), "the cat sat on the mat the cat sat".to_string()),
//!     ("b.txt".to_string(), "the dog sat on the mat".to_string()),
//! ];
//! let archive = compress_corpus(&corpus, CompressOptions::default());
//!
//! // 2. Run word count on the GPU (simulated Tesla V100) without decompressing.
//! let mut engine = GtadocEngine::new(GpuSpec::tesla_v100());
//! let execution = engine.run_archive(&archive, Task::WordCount);
//!
//! // 3. The result matches the CPU baseline and the uncompressed oracle.
//! if let AnalyticsOutput::WordCount(wc) = &execution.output {
//!     let the = archive.dictionary.get("the").unwrap();
//!     assert_eq!(wc.count(the), 5);
//! }
//! ```

#![forbid(unsafe_code)]

pub use datagen;
pub use gpu_sim;
pub use gtadoc;
pub use sequitur;
pub use tadoc;
pub use uncompressed;

/// Most commonly used items, re-exported for examples and quick experiments.
pub mod prelude {
    pub use datagen::{DatasetId, DatasetPreset};
    pub use gpu_sim::{Device, GpuSpec};
    pub use gtadoc::engine::{GpuExecution, GtadocEngine};
    pub use gtadoc::params::GtadocParams;
    pub use gtadoc::traversal::TraversalStrategy;
    pub use sequitur::compress::{compress_corpus, CompressOptions};
    pub use sequitur::{ArchiveStats, Dag, Grammar, Symbol, TadocArchive};
    pub use tadoc::apps::{run_task, Task, TaskConfig};
    pub use tadoc::fine_grained::{
        run_task_fine_grained, run_task_with_mode, CancelToken, ConfigError, Engine,
        EngineBuilder, EngineError, ExecutionMode, FineGrainedConfig, QueryOptions, TaskSpec,
    };
    pub use tadoc::results::AnalyticsOutput;
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn prelude_workflow_compiles_and_agrees() {
        let corpus = vec![
            ("x".to_string(), "alpha beta alpha beta gamma".to_string()),
            ("y".to_string(), "alpha beta gamma".to_string()),
        ];
        let archive = compress_corpus(&corpus, CompressOptions::default());
        let dag = Dag::from_grammar(&archive.grammar);
        let cpu = run_task(&archive, &dag, Task::WordCount, TaskConfig::default());
        let mut engine = GtadocEngine::new(GpuSpec::gtx_1080());
        let gpu = engine.run_archive(&archive, Task::WordCount);
        assert_eq!(cpu.output, gpu.output);
    }
}
