//! End-to-end tests for the network serving subsystem: a real
//! `tadoc-server` on an ephemeral loopback port, driven by real TCP
//! clients.
//!
//! The contract under test: concurrent clients receive answers
//! byte-identical to the sequential oracle; malformed, truncated and
//! oversized frames get **typed** protocol errors without taking the
//! handler pool down; a full admission queue sheds with `Overloaded`
//! instead of queuing unboundedly; expired deadlines answer
//! `DeadlineExceeded`; and graceful shutdown drains admitted work before
//! the listener goes away.

use std::collections::HashMap;
use std::io::Write;
use std::net::TcpStream;
use std::time::Duration;

use g_tadoc_repro::prelude::*;
use server::framing::{FrameReader, ReadOutcome};
use server::protocol::{
    encode_request, parse_response, QueryRequest, Request, Response, StatsSnapshot, WireErrorCode,
    HEADER_LEN, MAGIC, MAX_PAYLOAD_LEN, VERSION,
};
use server::server::{Server, ServerConfig, ServerHandle};
use server::{Client, QueryOutcome};

fn corpus() -> Vec<(String, String)> {
    let shared = "the quick brown fox jumps over the lazy dog while the cat watches ".repeat(6);
    (0..16)
        .map(|i| (format!("doc{i}"), format!("{shared} topic{} {shared}", i % 5)))
        .collect()
}

/// A corpus big enough that one cold query comfortably overlaps other
/// clients' admissions (used by the shed and drain tests).
fn large_corpus() -> Vec<(String, String)> {
    let page = "alpha beta gamma delta epsilon zeta eta theta iota kappa lambda mu ".repeat(40);
    (0..8)
        .map(|i| (format!("book{i}"), format!("{page} chapter{i} {page}")))
        .collect()
}

fn oracle_digests(archive: &TadocArchive, dag: &Dag) -> HashMap<(Task, TaskConfig), u64> {
    Task::ALL
        .into_iter()
        .map(|t| {
            let cfg = TaskConfig::default();
            ((t, cfg), run_task(archive, dag, t, cfg).output.digest())
        })
        .collect()
}

/// Triggers shutdown when dropped, so a panicking test body still lets the
/// server thread (and the enclosing `thread::scope`) finish.
struct ShutdownOnDrop(ServerHandle);

impl Drop for ShutdownOnDrop {
    fn drop(&mut self) {
        self.0.shutdown();
    }
}

/// Binds an ephemeral loopback port, runs the server for the duration of
/// `body`, then shuts it down and returns the final stats.
fn with_server<F>(config: ServerConfig, archive: &TadocArchive, dag: &Dag, body: F) -> StatsSnapshot
where
    F: FnOnce(&ServerHandle),
{
    let server = Server::bind("127.0.0.1:0", config).expect("bind loopback");
    let handle = server.handle();
    let mut stats = None;
    std::thread::scope(|s| {
        let runner = s.spawn(|| server.run(archive, dag).expect("server run"));
        {
            let _guard = ShutdownOnDrop(handle.clone());
            body(&handle);
        }
        stats = Some(runner.join().expect("server thread panicked"));
    });
    stats.expect("server stats")
}

/// Reads exactly one response frame off a raw stream (blocking).
fn read_response(stream: &mut TcpStream, reader: &mut FrameReader) -> Response {
    loop {
        match reader.read_frame(stream).expect("read response frame") {
            ReadOutcome::Frame { kind, payload } => {
                return parse_response(kind, &payload).expect("parse response")
            }
            ReadOutcome::Idle => continue,
            ReadOutcome::Closed => panic!("server closed the stream before responding"),
        }
    }
}

fn assert_protocol_error(resp: &Response) {
    match resp {
        Response::Error(e) => assert_eq!(
            e.code,
            WireErrorCode::Protocol,
            "expected a protocol error, got {:?}: {}",
            e.code,
            e.message
        ),
        other => panic!("expected a typed protocol error, got {other:?}"),
    }
}

/// ≥4 concurrent TCP clients running the full task mix against one server:
/// every answer must match the sequential oracle's digest.
#[test]
fn concurrent_tcp_clients_get_oracle_identical_answers() {
    let archive = compress_corpus(&corpus(), CompressOptions::default());
    let dag = Dag::from_grammar(&archive.grammar);
    let oracle = oracle_digests(&archive, &dag);

    let config = ServerConfig {
        handler_threads: 6,
        ..ServerConfig::default()
    };
    let stats = with_server(config, &archive, &dag, |handle| {
        std::thread::scope(|s| {
            for c in 0..5usize {
                let addr = handle.addr();
                let oracle = &oracle;
                s.spawn(move || {
                    let mut client = Client::connect(addr).expect("connect");
                    for i in 0..2 * Task::ALL.len() {
                        let task = Task::ALL[(c + i) % Task::ALL.len()];
                        let cfg = TaskConfig::default();
                        match client.query(task, cfg).expect("query round trip") {
                            QueryOutcome::Ok(out) => assert_eq!(
                                Some(&out.digest()),
                                oracle.get(&(task, cfg)),
                                "client {c}: {} diverged from the oracle over TCP",
                                task.name()
                            ),
                            other => panic!("client {c}: unexpected outcome {other:?}"),
                        }
                    }
                });
            }
        });
    });
    assert_eq!(stats.queries_answered, 5 * 2 * Task::ALL.len() as u64);
    assert_eq!(stats.protocol_errors, 0);
    assert!(stats.accepted_connections >= 5);
}

/// Malformed, truncated and oversized frames each get a **typed** protocol
/// error; non-fatal ones leave the same connection usable; and the handler
/// pool keeps serving fresh clients afterwards.
#[test]
fn bad_frames_get_typed_errors_without_killing_the_pool() {
    let archive = compress_corpus(&corpus(), CompressOptions::default());
    let dag = Dag::from_grammar(&archive.grammar);
    let wc_digest = run_task(&archive, &dag, Task::WordCount, TaskConfig::default())
        .output
        .digest();

    let valid_query = encode_request(&Request::Query(QueryRequest {
        task: Task::WordCount,
        cfg: TaskConfig::default(),
        deadline_ms: None,
    }));
    let query_kind = valid_query[5];

    let stats = with_server(ServerConfig::default(), &archive, &dag, |handle| {
        let addr = handle.addr();

        // Bad magic: fatal — typed error, then the server closes.
        let mut s = TcpStream::connect(addr).expect("connect");
        s.write_all(&[0xFFu8; 64]).expect("write garbage");
        assert_protocol_error(&read_response(&mut s, &mut FrameReader::new()));
        drop(s);

        // Oversized declared length: fatal, rejected from the header alone.
        let mut s = TcpStream::connect(addr).expect("connect");
        let mut frame = Vec::new();
        frame.extend_from_slice(&MAGIC);
        frame.push(VERSION);
        frame.push(query_kind);
        frame.extend_from_slice(&(MAX_PAYLOAD_LEN + 1).to_le_bytes());
        s.write_all(&frame).expect("write oversized header");
        assert_protocol_error(&read_response(&mut s, &mut FrameReader::new()));
        drop(s);

        // Truncated frame then EOF: fatal.
        let mut s = TcpStream::connect(addr).expect("connect");
        s.write_all(&valid_query[..valid_query.len() - 2])
            .expect("write truncated frame");
        s.shutdown(std::net::Shutdown::Write).expect("half-close");
        assert_protocol_error(&read_response(&mut s, &mut FrameReader::new()));
        drop(s);

        // Unsupported version: fatal.
        let mut s = TcpStream::connect(addr).expect("connect");
        let mut frame = valid_query.clone();
        frame[4] = VERSION + 1;
        s.write_all(&frame).expect("write future-version frame");
        assert_protocol_error(&read_response(&mut s, &mut FrameReader::new()));
        drop(s);

        // Unknown kind and malformed payload are NON-fatal: the same
        // connection must answer a valid query afterwards.
        let mut s = TcpStream::connect(addr).expect("connect");
        let mut reader = FrameReader::new();
        let mut unknown = Vec::new();
        unknown.extend_from_slice(&MAGIC);
        unknown.push(VERSION);
        unknown.push(0x7f);
        unknown.extend_from_slice(&0u32.to_le_bytes());
        s.write_all(&unknown).expect("write unknown kind");
        assert_protocol_error(&read_response(&mut s, &mut reader));

        let mut corrupt = valid_query.clone();
        corrupt[HEADER_LEN] = 0xEE; // unknown task tag
        s.write_all(&corrupt).expect("write corrupt payload");
        assert_protocol_error(&read_response(&mut s, &mut reader));

        s.write_all(&valid_query).expect("write valid query");
        match read_response(&mut s, &mut reader) {
            Response::Result(out) => assert_eq!(out.digest(), wc_digest),
            other => panic!("expected a result on the surviving stream, got {other:?}"),
        }
        drop(s);

        // A fresh client still gets oracle-correct answers: the pool is up.
        let mut client = Client::connect(addr).expect("connect after abuse");
        match client
            .query(Task::WordCount, TaskConfig::default())
            .expect("query")
        {
            QueryOutcome::Ok(out) => assert_eq!(out.digest(), wc_digest),
            other => panic!("unexpected outcome {other:?}"),
        }
        let snap = client.stats().expect("stats");
        assert!(
            snap.protocol_errors >= 6,
            "expected ≥6 protocol errors counted, got {}",
            snap.protocol_errors
        );
    });
    assert!(stats.protocol_errors >= 6);
    assert_eq!(stats.queries_answered, 2);
}

/// A saturated admission queue sheds with `Overloaded` instead of queuing
/// unboundedly: capacity 1, one executor, many closed-loop clients.
#[test]
fn full_queue_sheds_with_overloaded() {
    let archive = compress_corpus(&large_corpus(), CompressOptions::default());
    let dag = Dag::from_grammar(&archive.grammar);
    let digest = run_task(&archive, &dag, Task::WordCount, TaskConfig::default())
        .output
        .digest();

    let config = ServerConfig {
        handler_threads: 8,
        executor_threads: 1,
        queue_depth: 1,
        batch_max: 1,
        results_cache: false, // cache hits would finish too fast to overlap
        ..ServerConfig::default()
    };
    let stats = with_server(config, &archive, &dag, |handle| {
        let shed = std::sync::atomic::AtomicU64::new(0);
        std::thread::scope(|s| {
            for _ in 0..6usize {
                let addr = handle.addr();
                let shed = &shed;
                s.spawn(move || {
                    let mut client = Client::connect(addr).expect("connect");
                    for _ in 0..30 {
                        match client
                            .query(Task::WordCount, TaskConfig::default())
                            .expect("query round trip")
                        {
                            QueryOutcome::Ok(out) => assert_eq!(out.digest(), digest),
                            QueryOutcome::Overloaded {
                                queue_depth,
                                capacity,
                            } => {
                                assert!(queue_depth <= capacity);
                                assert_eq!(capacity, 1);
                                shed.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                            }
                            QueryOutcome::Denied(e) => {
                                panic!("unexpected denial: {:?} {}", e.code, e.message)
                            }
                        }
                    }
                });
            }
        });
        assert!(
            shed.load(std::sync::atomic::Ordering::Relaxed) > 0,
            "6 closed-loop clients against a capacity-1 queue never saw Overloaded"
        );
    });
    assert!(stats.shed > 0);
    assert!(stats.max_queue_depth <= 1);
    assert_eq!(stats.refused, 0);
}

/// An already-expired deadline (`deadline_ms: 0`) answers
/// `DeadlineExceeded` without executing, and the engine keeps serving the
/// same connection afterwards.  (In-flight expiry is covered
/// deterministically by `faults::inflight_deadline_expiry`, which stalls
/// execution at a chunk boundary.)
#[test]
fn expired_deadlines_answer_deadline_exceeded() {
    let archive = compress_corpus(&corpus(), CompressOptions::default());
    let dag = Dag::from_grammar(&archive.grammar);

    let stats = with_server(ServerConfig::default(), &archive, &dag, |handle| {
        let mut client = Client::connect(handle.addr()).expect("connect");

        // Already expired on arrival: never executes.
        match client
            .query_with_deadline(Task::WordCount, TaskConfig::default(), 0)
            .expect("round trip")
        {
            QueryOutcome::Denied(e) => assert_eq!(e.code, WireErrorCode::DeadlineExceeded),
            other => panic!("expected DeadlineExceeded, got {other:?}"),
        }

        // The engine is unharmed: the same connection then gets a real
        // answer with no deadline.
        match client
            .query(Task::WordCount, TaskConfig::default())
            .expect("round trip")
        {
            QueryOutcome::Ok(out) => {
                let oracle = run_task(&archive, &dag, Task::WordCount, TaskConfig::default());
                assert_eq!(out.digest(), oracle.output.digest());
            }
            other => panic!("expected a result, got {other:?}"),
        }
    });
    assert_eq!(stats.queries_answered, 2);
}

/// Graceful shutdown drains: a query in flight when `Shutdown` arrives is
/// still answered (oracle-identical), the listener then goes away, and new
/// connections are refused.
#[test]
fn graceful_shutdown_drains_inflight_queries() {
    let archive = compress_corpus(&large_corpus(), CompressOptions::default());
    let dag = Dag::from_grammar(&archive.grammar);
    let digest = run_task(&archive, &dag, Task::SequenceCount, TaskConfig::default())
        .output
        .digest();

    let config = ServerConfig {
        results_cache: false,
        ..ServerConfig::default()
    };
    let mut addr = None;
    let stats = with_server(config, &archive, &dag, |handle| {
        addr = Some(handle.addr());
        std::thread::scope(|s| {
            let addr = handle.addr();
            let worker = s.spawn(move || {
                let mut client = Client::connect(addr).expect("connect");
                client
                    .query(Task::SequenceCount, TaskConfig::default())
                    .expect("round trip")
            });
            // Let the query reach the executor, then ask for shutdown.
            std::thread::sleep(Duration::from_millis(5));
            let mut admin = Client::connect(addr).expect("connect admin");
            admin.shutdown_server().expect("shutdown ack");

            match worker.join().expect("client thread") {
                QueryOutcome::Ok(out) => assert_eq!(
                    out.digest(),
                    digest,
                    "in-flight query diverged during graceful shutdown"
                ),
                other => panic!("in-flight query was not drained: {other:?}"),
            }
        });
    });
    assert!(stats.queries_answered >= 1);
    // The listener is gone: fresh connections fail outright.
    let addr = addr.expect("server address");
    assert!(
        TcpStream::connect_timeout(&addr, Duration::from_millis(500)).is_err(),
        "listener still accepting after graceful shutdown"
    );
}

/// Fault-injection coverage for the two server-side sites (armed only under
/// `--features failpoints`): a dropped accept recovers, and an injected
/// queue-full sheds deterministically.
#[cfg(feature = "failpoints")]
mod faults {
    use super::*;
    use std::sync::{Mutex, MutexGuard, OnceLock};

    /// The failpoint registry is process-global; these tests arm/disarm it
    /// and must not interleave.
    fn serial() -> MutexGuard<'static, ()> {
        static LOCK: OnceLock<Mutex<()>> = OnceLock::new();
        LOCK.get_or_init(|| Mutex::new(()))
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
    }

    /// `server-accept` armed once: the first connection is dropped at
    /// accept; the next one is served normally.
    #[test]
    fn dropped_accept_recovers() {
        let _guard = serial();
        failpoints::reset();
        let archive = compress_corpus(&corpus(), CompressOptions::default());
        let dag = Dag::from_grammar(&archive.grammar);
        let digest = run_task(&archive, &dag, Task::WordCount, TaskConfig::default())
            .output
            .digest();

        let stats = with_server(ServerConfig::default(), &archive, &dag, |handle| {
            failpoints::enable_times("server-accept", 1);
            // The dropped connection: connect succeeds at the TCP level,
            // but the server discards the stream, so the query cannot
            // complete.
            let mut doomed = Client::connect(handle.addr()).expect("connect");
            assert!(
                doomed.query(Task::WordCount, TaskConfig::default()).is_err(),
                "query should fail on a connection dropped at accept"
            );
            // The acceptor survived: the next connection is served.
            let mut client = Client::connect(handle.addr()).expect("reconnect");
            match client
                .query(Task::WordCount, TaskConfig::default())
                .expect("round trip")
            {
                QueryOutcome::Ok(out) => assert_eq!(out.digest(), digest),
                other => panic!("expected a result after recovery, got {other:?}"),
            }
            failpoints::reset();
        });
        assert_eq!(stats.queries_answered, 1);
    }

    /// In-flight deadline expiry, deterministically: an `observe` hook on
    /// the engine's `chunk-boundary` site stalls execution past the
    /// query's budget, so the deadline trips **during** execution (not at
    /// the pre-flight check), and the answer is `DeadlineExceeded`.
    #[test]
    fn inflight_deadline_expiry() {
        let _guard = serial();
        failpoints::reset();
        let archive = compress_corpus(&corpus(), CompressOptions::default());
        let dag = Dag::from_grammar(&archive.grammar);
        let digest = run_task(&archive, &dag, Task::WordCount, TaskConfig::default())
            .output
            .digest();

        let stats = with_server(ServerConfig::default(), &archive, &dag, |handle| {
            failpoints::observe("chunk-boundary", || {
                std::thread::sleep(Duration::from_millis(25))
            });
            let mut client = Client::connect(handle.addr()).expect("connect");
            // A generous-enough budget to pass the pre-flight check, far
            // too small to survive a stalled chunk boundary.
            match client
                .query_with_deadline(Task::WordCount, TaskConfig::default(), 10)
                .expect("round trip")
            {
                QueryOutcome::Denied(e) => assert_eq!(e.code, WireErrorCode::DeadlineExceeded),
                other => panic!("expected in-flight DeadlineExceeded, got {other:?}"),
            }
            failpoints::reset();
            // The same engine still answers an unlimited query correctly.
            match client
                .query(Task::WordCount, TaskConfig::default())
                .expect("round trip")
            {
                QueryOutcome::Ok(out) => assert_eq!(out.digest(), digest),
                other => panic!("expected a result after reset, got {other:?}"),
            }
        });
        assert_eq!(stats.queries_answered, 2);
    }

    /// `server-queue` armed N times: each admission sheds with
    /// `Overloaded`, deterministically, then service resumes.
    #[test]
    fn injected_queue_full_sheds_deterministically() {
        let _guard = serial();
        failpoints::reset();
        let archive = compress_corpus(&corpus(), CompressOptions::default());
        let dag = Dag::from_grammar(&archive.grammar);
        let digest = run_task(&archive, &dag, Task::WordCount, TaskConfig::default())
            .output
            .digest();

        let stats = with_server(ServerConfig::default(), &archive, &dag, |handle| {
            failpoints::enable_times("server-queue", 3);
            let mut client = Client::connect(handle.addr()).expect("connect");
            for i in 0..3 {
                match client
                    .query(Task::WordCount, TaskConfig::default())
                    .expect("round trip")
                {
                    QueryOutcome::Overloaded { .. } => {}
                    other => panic!("injection {i}: expected Overloaded, got {other:?}"),
                }
            }
            match client
                .query(Task::WordCount, TaskConfig::default())
                .expect("round trip")
            {
                QueryOutcome::Ok(out) => assert_eq!(out.digest(), digest),
                other => panic!("expected a result once disarmed, got {other:?}"),
            }
            failpoints::reset();
        });
        assert_eq!(stats.shed, 3);
        assert_eq!(stats.queries_answered, 1);
    }
}
