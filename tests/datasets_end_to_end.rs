//! End-to-end tests over the synthetic dataset presets A–E (at a small scale):
//! compression round-trips, Table II statistics are sensible, and G-TADOC
//! matches the CPU baseline on every dataset and task.

use g_tadoc_repro::prelude::*;

const SCALE: f64 = 0.02;

#[test]
fn every_dataset_roundtrips_through_compression() {
    for id in DatasetId::ALL {
        let corpus = DatasetPreset::new(id).generate_scaled(SCALE);
        let archive = corpus.compress();
        assert_eq!(
            archive.grammar.expand_files(),
            corpus.files,
            "dataset {} must decompress to the original token streams",
            id.label()
        );
        archive.grammar.validate().expect("valid grammar");
    }
}

#[test]
fn table2_statistics_reflect_dataset_shapes() {
    let mut stats = Vec::new();
    for id in DatasetId::ALL {
        let corpus = DatasetPreset::new(id).generate_scaled(SCALE);
        let archive = corpus.compress();
        stats.push((id, ArchiveStats::compute(&archive)));
    }
    let by_id = |want: DatasetId| &stats.iter().find(|(id, _)| *id == want).unwrap().1;
    // Dataset A has the most files; B has four; D and E are single files.
    assert!(by_id(DatasetId::A).num_files > by_id(DatasetId::B).num_files);
    assert_eq!(by_id(DatasetId::B).num_files, 4);
    assert_eq!(by_id(DatasetId::D).num_files, 1);
    assert_eq!(by_id(DatasetId::E).num_files, 1);
    // Every dataset exhibits enough redundancy for TADOC to be worthwhile.
    for (id, s) in &stats {
        assert!(
            s.token_reduction() > 1.2,
            "dataset {} should compress (reduction {:.2})",
            id.label(),
            s.token_reduction()
        );
        assert!(s.num_rules > 1, "dataset {}", id.label());
    }
}

#[test]
fn gtadoc_matches_cpu_baseline_on_all_datasets_and_tasks() {
    let cfg = TaskConfig::default();
    for id in DatasetId::ALL {
        let corpus = DatasetPreset::new(id).generate_scaled(SCALE);
        let archive = corpus.compress();
        let dag = Dag::from_grammar(&archive.grammar);
        let params = GtadocParams {
            requires_pcie_transfer: id.is_large(),
            ..Default::default()
        };
        let mut engine = GtadocEngine::with_params(GpuSpec::rtx_2080_ti(), params);
        for task in Task::ALL {
            let cpu = run_task(&archive, &dag, task, cfg);
            let gpu = engine.run_archive(&archive, task);
            assert_eq!(
                gpu.output,
                cpu.output,
                "dataset {} task {}",
                id.label(),
                task.name()
            );
            assert!(gpu.total_seconds() > 0.0);
        }
    }
}

#[test]
fn large_dataset_pays_pcie_transfer() {
    let corpus = DatasetPreset::new(DatasetId::C).generate_scaled(SCALE);
    let archive = corpus.compress();
    let with = GtadocParams {
        requires_pcie_transfer: true,
        ..Default::default()
    };
    let mut engine_with = GtadocEngine::with_params(GpuSpec::tesla_v100(), with);
    let mut engine_without = GtadocEngine::new(GpuSpec::tesla_v100());
    let a = engine_with.run_archive(&archive, Task::WordCount);
    let b = engine_without.run_archive(&archive, Task::WordCount);
    assert!(a.transfer_seconds > b.transfer_seconds);
    assert_eq!(a.output, b.output);
}

#[test]
fn strategy_selector_prefers_top_down_for_dataset_b_term_vector() {
    // The Section VI-C observation: with only four files, the per-rule file
    // information is tiny, so the selector should pick top-down for term
    // vector on dataset B.
    let corpus = DatasetPreset::new(DatasetId::B).generate_scaled(SCALE);
    let archive = corpus.compress();
    let dag = Dag::from_grammar(&archive.grammar);
    let layout = gtadoc::layout::GpuLayout::build(&archive, &dag);
    let choice = gtadoc::traversal::selector::select(Task::TermVector, &layout);
    assert_eq!(choice, TraversalStrategy::TopDown);
}
