//! Engine session integration tests: one long-lived [`Engine`] must serve
//! repeated queries byte-identically to the sequential oracle, keep its
//! worker pool alive across queries, and demonstrably amortize the shared
//! initialization (cold vs warm, observable through `PhaseTimings`).

use g_tadoc_repro::prelude::*;
use tadoc::apps::TaskExecution;
use tadoc::fine_grained::TaskSpec;

/// Dataset-A-shaped corpus: many small files sharing redundant content.
fn a_shaped_corpus() -> Vec<(String, String)> {
    let shared = "the quick brown fox jumps over the lazy dog while the cat watches ".repeat(5);
    (0..40)
        .map(|i| (format!("abstract{i}"), format!("{shared} topic{} {shared}", i % 7)))
        .collect()
}

/// Dataset-B-shaped corpus: a few huge files whose root body dominates.
fn b_shaped_corpus() -> Vec<(String, String)> {
    let page = "alpha beta gamma delta epsilon zeta eta theta iota kappa ".repeat(40);
    (0..3)
        .map(|i| {
            (
                format!("book{i}"),
                format!("{page} chapter{} {page} chapter{} {page}", i, i + 1),
            )
        })
        .collect()
}

/// One `Engine`, all six tasks run **twice**, at 1/4/8 threads, on A- and
/// B-shaped corpora: both passes must be byte-identical to the sequential
/// oracle, and the second pass must be served warm.
#[test]
fn one_engine_all_tasks_twice_matches_oracle_on_both_corpus_shapes() {
    for (shape, corpus) in [("A", a_shaped_corpus()), ("B", b_shaped_corpus())] {
        let archive = compress_corpus(&corpus, CompressOptions::default());
        let dag = Dag::from_grammar(&archive.grammar);
        let cfg = TaskConfig::default();
        for threads in [1usize, 4, 8] {
            let engine = Engine::builder(&archive, &dag)
                .threads(threads)
                .build()
                .expect("valid engine config");
            for task in Task::ALL {
                let oracle = run_task(&archive, &dag, task, cfg);
                let first = engine.run(task, cfg).expect("valid task config");
                let second = engine.run(task, cfg).expect("valid task config");
                assert_eq!(
                    first.output,
                    oracle.output,
                    "[{shape}] cold {} at {threads} threads diverges",
                    task.name()
                );
                assert_eq!(
                    second.output,
                    oracle.output,
                    "[{shape}] warm {} at {threads} threads diverges",
                    task.name()
                );
                assert!(
                    second.timings.warm,
                    "[{shape}] second {} run at {threads} threads must be warm",
                    task.name()
                );
            }
        }
    }
}

/// The retained one-shot wrapper and the session facade must agree on every
/// task and execution mode — the compatibility contract of the redesign.
#[test]
fn engine_facade_agrees_with_run_task_with_mode_wrapper() {
    let corpus = a_shaped_corpus();
    let archive = compress_corpus(&corpus, CompressOptions::default());
    let dag = Dag::from_grammar(&archive.grammar);
    let cfg = TaskConfig::default();
    let modes = [
        ExecutionMode::Sequential,
        ExecutionMode::CoarseGrained(tadoc::parallel::ParallelConfig { num_threads: 3 }),
        ExecutionMode::FineGrained(FineGrainedConfig::with_threads(3)),
    ];
    for mode in modes {
        let engine = Engine::builder(&archive, &dag)
            .execution_mode(mode)
            .build()
            .expect("valid engine config");
        for task in Task::ALL {
            let via_wrapper = run_task_with_mode(&archive, &dag, task, cfg, mode);
            let via_engine = engine.run(task, cfg).expect("valid task config");
            assert_eq!(
                via_engine.output,
                via_wrapper.output,
                "mode {} task {} diverges between wrapper and engine",
                mode.name(),
                task.name()
            );
        }
    }
}

/// On a warm engine, a repeated task's recorded init phase must drop versus
/// its cold run: no shared artifact is recomputed (zero shared-init time and
/// zero init work), and the init wall-clock shrinks.
#[test]
fn warm_init_drops_versus_cold_init() {
    let corpus = b_shaped_corpus();
    let archive = compress_corpus(&corpus, CompressOptions::default());
    let dag = Dag::from_grammar(&archive.grammar);
    let cfg = TaskConfig::default();
    for task in Task::ALL {
        // A fresh session per task: on a shared one, a task can be served
        // warm on its *first* run because an earlier task already cached
        // its whole artifact set (sort after wordCount, for instance).
        let engine = Engine::builder(&archive, &dag)
            .threads(4)
            .build()
            .expect("valid engine config");
        let cold: TaskExecution = engine.run(task, cfg).expect("valid task config");
        assert!(!cold.timings.warm, "{} first run must be cold", task.name());
        // Take the fastest of a few warm repeats so a scheduler preemption
        // inside one sub-microsecond warm init cannot flake the wall-clock
        // comparison on a time-sliced single-core runner.
        let mut min_warm_init = None;
        for _ in 0..3 {
            let warm: TaskExecution = engine.run(task, cfg).expect("valid task config");
            assert!(warm.timings.warm, "{} repeat run must be warm", task.name());
            assert!(
                warm.timings.shared_init.is_zero(),
                "{} warm run must spend no time on shared artifacts",
                task.name()
            );
            assert!(
                warm.timings.init_work.total_ops() < cold.timings.init_work.total_ops()
                    || cold.timings.init_work.total_ops() == 0,
                "{} warm init work ({}) must drop below cold ({})",
                task.name(),
                warm.timings.init_work.total_ops(),
                cold.timings.init_work.total_ops()
            );
            min_warm_init = Some(
                min_warm_init
                    .map_or(warm.timings.init, |m: std::time::Duration| {
                        m.min(warm.timings.init)
                    }),
            );
        }
        // Wall-clock: the warm init only performs cache lookups, the cold
        // init ran whole pool traversals; on the B-shaped corpus the gap is
        // orders of magnitude, so this comparison is stable.
        let min_warm_init = min_warm_init.expect("three warm runs measured");
        assert!(
            min_warm_init <= cold.timings.init,
            "{} warm init {:?} must not exceed cold init {:?}",
            task.name(),
            min_warm_init,
            cold.timings.init
        );
    }
}

/// Pool-survives-queries stress: many small queries on one engine, epochs
/// strictly increasing, and no thread is ever respawned (worker ids stay
/// pinned to the same OS threads from the first query to the last).
#[test]
fn pool_survives_many_queries_without_respawning_threads() {
    let corpus = a_shaped_corpus();
    let archive = compress_corpus(&corpus, CompressOptions::default());
    let dag = Dag::from_grammar(&archive.grammar);
    let engine = Engine::builder(&archive, &dag)
        .threads(4)
        .build()
        .expect("valid engine config");

    let initial_thread_ids: Vec<(usize, std::thread::ThreadId)> = engine
        .with_worker_pool(|pool| pool.collect(|w| (w, std::thread::current().id())))
        .expect("fine mode owns a pool");

    let mut last_epochs = engine.epochs();
    let cfg = TaskConfig::default();
    for round in 0..25 {
        let task = Task::ALL[round % Task::ALL.len()];
        let exec = engine.run(task, cfg).expect("valid task config");
        assert_eq!(
            exec.output.task_name(),
            task.name(),
            "round {round} produced the wrong task output"
        );
        let epochs = engine.epochs();
        assert!(
            epochs > last_epochs,
            "round {round}: epochs must strictly increase ({epochs} vs {last_epochs})"
        );
        last_epochs = epochs;
    }

    let final_thread_ids: Vec<(usize, std::thread::ThreadId)> = engine
        .with_worker_pool(|pool| pool.collect(|w| (w, std::thread::current().id())))
        .expect("fine mode owns a pool");
    assert_eq!(
        final_thread_ids, initial_thread_ids,
        "worker ids must stay pinned to the same OS threads across queries"
    );
}

/// `run_all` computes shared prerequisites once: after a batch over all six
/// tasks, re-running the batch is fully warm, and outputs match the oracle.
#[test]
fn run_all_shares_prerequisites_and_matches_oracle() {
    let corpus = b_shaped_corpus();
    let archive = compress_corpus(&corpus, CompressOptions::default());
    let dag = Dag::from_grammar(&archive.grammar);
    let engine = Engine::builder(&archive, &dag)
        .threads(4)
        .build()
        .expect("valid engine config");
    let specs = TaskSpec::all();

    let first = engine.run_all(&specs).expect("valid batch");
    let second = engine.run_all(&specs).expect("valid batch");
    assert_eq!(first.len(), 6);
    for (spec, (cold, warm)) in specs.iter().zip(first.iter().zip(&second)) {
        let oracle = run_task(&archive, &dag, spec.task, spec.cfg);
        assert_eq!(cold.output, oracle.output, "{} batch pass 1", spec.task.name());
        assert_eq!(warm.output, oracle.output, "{} batch pass 2", spec.task.name());
        assert!(
            warm.timings.warm,
            "{} must be warm on the second batch",
            spec.task.name()
        );
    }

    // Within the first batch, later tasks already share artifacts computed
    // by earlier ones: sort reuses wordCount's rule weights and chunks
    // outright, so it must have run fully warm even on pass 1.
    assert!(
        first[1].timings.warm,
        "sort shares every artifact with wordCount and must be warm in pass 1"
    );
}

/// Sequence-length variants each get their own cached head/tail state and
/// all match the oracle through one shared session.
#[test]
fn sequence_length_variants_share_one_session() {
    let corpus = a_shaped_corpus();
    let archive = compress_corpus(&corpus, CompressOptions::default());
    let dag = Dag::from_grammar(&archive.grammar);
    let engine = Engine::builder(&archive, &dag)
        .threads(4)
        .build()
        .expect("valid engine config");
    for l in [1usize, 2, 3, 4] {
        let cfg = TaskConfig { sequence_length: l };
        for task in [Task::SequenceCount, Task::RankedInvertedIndex] {
            let oracle = run_task(&archive, &dag, task, cfg);
            let got = engine.run(task, cfg).expect("valid task config");
            assert_eq!(got.output, oracle.output, "{} l={l}", task.name());
            let again = engine.run(task, cfg).expect("valid task config");
            assert!(again.timings.warm, "{} l={l} repeat must be warm", task.name());
            assert_eq!(again.output, oracle.output, "{} l={l} warm", task.name());
        }
    }
}
