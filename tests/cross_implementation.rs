//! Cross-implementation integration tests: for every analytics task, the
//! uncompressed oracle, sequential CPU TADOC, coarse-grained parallel TADOC,
//! fine-grained parallel TADOC, and G-TADOC (both traversal strategies where
//! applicable, on all three GPU presets) must produce identical results.

use datagen::CorpusConfig;
use g_tadoc_repro::prelude::*;
use gtadoc::traversal::TraversalStrategy;
use tadoc::fine_grained::{run_task_fine_grained, FineGrainedConfig};
use tadoc::parallel::{run_task_parallel, ParallelConfig};

fn corpora() -> Vec<(&'static str, Vec<(String, String)>)> {
    let shared = "the quick brown fox jumps over the lazy dog and the cat watches ".repeat(8);
    vec![
        (
            "figure1",
            vec![
                (
                    "fileA".to_string(),
                    "w1 w2 w3 w1 w2 w4 w1 w2 w3 w1 w2 w4".to_string(),
                ),
                ("fileB".to_string(), "w1 w2 w1".to_string()),
            ],
        ),
        (
            "redundant_multi_file",
            (0..6)
                .map(|i| (format!("doc{i}"), format!("{shared} unique token{i} {shared}")))
                .collect(),
        ),
        (
            "single_file",
            vec![("only".to_string(), format!("{shared} {shared} coda"))],
        ),
        (
            "no_redundancy",
            vec![
                ("a".to_string(), "one two three four five six".to_string()),
                ("b".to_string(), "seven eight nine ten eleven".to_string()),
            ],
        ),
        (
            "empty_and_tiny_files",
            vec![
                ("empty".to_string(), String::new()),
                ("tiny".to_string(), "x".to_string()),
                ("normal".to_string(), "x y z x y z x y".to_string()),
            ],
        ),
    ]
}

#[test]
fn all_implementations_agree_on_all_tasks() {
    for (name, corpus) in corpora() {
        let archive = compress_corpus(&corpus, CompressOptions::default());
        let dag = Dag::from_grammar(&archive.grammar);
        let files = archive.grammar.expand_files();
        let cfg = TaskConfig::default();
        let mut engine = GtadocEngine::new(GpuSpec::gtx_1080());

        for task in Task::ALL {
            let (oracle_out, _) = uncompressed::cpu::run_cpu_uncompressed(&files, task, cfg);
            let cpu = run_task(&archive, &dag, task, cfg);
            assert_eq!(cpu.output, oracle_out, "[{name}] CPU TADOC vs oracle on {}", task.name());

            let parallel = run_task_parallel(
                &archive,
                &dag,
                task,
                cfg,
                ParallelConfig { num_threads: 3 },
            );
            assert_eq!(
                parallel.output,
                oracle_out,
                "[{name}] parallel TADOC vs oracle on {}",
                task.name()
            );

            let gpu = engine.run_archive(&archive, task);
            assert_eq!(
                gpu.output,
                oracle_out,
                "[{name}] G-TADOC vs oracle on {}",
                task.name()
            );
        }
    }
}

/// The fine-grained CPU engine must be byte-identical to the sequential and
/// coarse-grained paths on every task, on the paper's Figure-1 corpus and on
/// a Zipfian synthetic corpus, at several worker-pool sizes.
#[test]
fn fine_grained_equals_sequential_and_coarse_on_all_tasks() {
    let figure1 = corpora().swap_remove(0).1;
    let zipf = CorpusConfig {
        name: "zipf".to_string(),
        num_files: 6,
        tokens_per_file: 600,
        vocabulary: 400,
        zipf_exponent: 1.1,
        redundancy: 0.7,
        ..Default::default()
    };
    let zipf_corpus = datagen::corpus::generate(&zipf);

    let archives: Vec<(&str, TadocArchive)> = vec![
        (
            "figure1",
            compress_corpus(&figure1, CompressOptions::default()),
        ),
        ("zipf", zipf_corpus.compress()),
    ];

    for (name, archive) in &archives {
        let dag = Dag::from_grammar(&archive.grammar);
        let cfg = TaskConfig::default();
        for task in Task::ALL {
            let sequential = run_task(archive, &dag, task, cfg);
            let coarse = run_task_parallel(
                archive,
                &dag,
                task,
                cfg,
                ParallelConfig { num_threads: 4 },
            );
            assert_eq!(
                coarse.output,
                sequential.output,
                "[{name}] coarse vs sequential on {}",
                task.name()
            );
            for threads in [1usize, 4, 8] {
                let fine = run_task_fine_grained(
                    archive,
                    &dag,
                    task,
                    cfg,
                    FineGrainedConfig::with_threads(threads),
                );
                assert_eq!(
                    fine.output,
                    sequential.output,
                    "[{name}] fine ({threads} threads) vs sequential on {}",
                    task.name()
                );
            }
        }
    }
}

/// An archive containing an empty file (alongside tiny and normal files)
/// must agree across sequential, coarse and fine on **all six tasks** and at
/// 1/4/8 worker threads.  The empty file makes region sizing degenerate —
/// workers can end up with zero assigned rules, so their arena tables get
/// `words_required(0) == 0` regions, exercising the zero-capacity contract
/// on the production path (the historical mod-by-zero panic of the probe
/// loop).
#[test]
fn empty_file_archive_agrees_on_all_tasks_at_all_thread_counts() {
    let corpus = vec![
        ("empty".to_string(), String::new()),
        ("tiny".to_string(), "x".to_string()),
        ("normal".to_string(), "x y z x y z x y".to_string()),
        ("empty_too".to_string(), String::new()),
    ];
    let archive = compress_corpus(&corpus, CompressOptions::default());
    let dag = Dag::from_grammar(&archive.grammar);
    let files = archive.grammar.expand_files();
    let cfg = TaskConfig::default();
    for task in Task::ALL {
        let (oracle_out, _) = uncompressed::cpu::run_cpu_uncompressed(&files, task, cfg);
        let sequential = run_task(&archive, &dag, task, cfg);
        assert_eq!(
            sequential.output,
            oracle_out,
            "sequential vs oracle on {} with an empty file",
            task.name()
        );
        for threads in [1usize, 4, 8] {
            let coarse = run_task_parallel(
                &archive,
                &dag,
                task,
                cfg,
                ParallelConfig {
                    num_threads: threads,
                },
            );
            assert_eq!(
                coarse.output,
                sequential.output,
                "coarse ({threads} threads) vs sequential on {} with an empty file",
                task.name()
            );
            let fine = run_task_fine_grained(
                &archive,
                &dag,
                task,
                cfg,
                FineGrainedConfig::with_threads(threads),
            );
            assert_eq!(
                fine.output,
                sequential.output,
                "fine ({threads} threads) vs sequential on {} with an empty file",
                task.name()
            );
        }
    }
}

/// Dataset-B-shaped regression corpus: a few huge files whose root body
/// dominates the grammar.  This is the shape where whole-rule work items
/// serialise on one worker — the chunk-granular decomposition must both
/// agree with the sequential engine and actually be exercised (the root is
/// far larger than the chunking threshold).  All six tasks, 1/4/8 threads,
/// at the default threshold and at a small one that multiplies chunk
/// boundaries.
#[test]
fn dataset_b_shaped_corpus_agrees_on_all_tasks_at_all_thread_counts() {
    let corpus = DatasetPreset::new(DatasetId::B).generate_scaled(1.0);
    assert!(
        (2..=4).contains(&corpus.files.len()),
        "dataset B preset must stay a few-huge-files corpus"
    );
    for (name, tokens) in corpus.file_names.iter().zip(&corpus.files) {
        assert!(
            tokens.len() >= 50_000,
            "file {name} must hold at least 50k tokens"
        );
    }
    let archive = corpus.compress();
    let dag = Dag::from_grammar(&archive.grammar);
    let default_chunk = FineGrainedConfig::default().chunk_elements;
    assert!(
        archive.grammar.root().len() > default_chunk,
        "the root body must exceed the chunking threshold, or this test \
         no longer exercises chunk-granular decomposition"
    );
    let cfg = TaskConfig::default();
    for task in Task::ALL {
        let sequential = run_task(&archive, &dag, task, cfg);
        for threads in [1usize, 4, 8] {
            for chunk_elements in [default_chunk, 512] {
                let fine = run_task_fine_grained(
                    &archive,
                    &dag,
                    task,
                    cfg,
                    FineGrainedConfig {
                        num_threads: threads,
                        chunk_elements,
                    },
                );
                assert_eq!(
                    fine.output,
                    sequential.output,
                    "fine ({threads} threads, chunk {chunk_elements}) vs sequential on {}",
                    task.name()
                );
            }
        }
    }
}

#[test]
fn both_gpu_traversal_strategies_agree_on_every_platform() {
    let corpus = corpora().remove(1).1;
    let archive = compress_corpus(&corpus, CompressOptions::default());
    let dag = Dag::from_grammar(&archive.grammar);
    let layout = gtadoc::layout::GpuLayout::build(&archive, &dag);
    for spec in GpuSpec::all_platforms() {
        let mut engine = GtadocEngine::new(spec);
        for task in [
            Task::WordCount,
            Task::Sort,
            Task::InvertedIndex,
            Task::TermVector,
        ] {
            let td = engine.run_layout(&layout, task, Some(TraversalStrategy::TopDown));
            let bu = engine.run_layout(&layout, task, Some(TraversalStrategy::BottomUp));
            assert_eq!(td.output, bu.output, "strategies disagree on {}", task.name());
        }
    }
}

#[test]
fn archive_serialization_preserves_analytics_results() {
    let corpus = corpora().remove(1).1;
    let archive = compress_corpus(&corpus, CompressOptions::default());
    let bytes = archive.to_bytes();
    let restored = TadocArchive::from_bytes(&bytes).expect("valid archive");
    let dag_a = Dag::from_grammar(&archive.grammar);
    let dag_b = Dag::from_grammar(&restored.grammar);
    let cfg = TaskConfig::default();
    for task in Task::ALL {
        let a = run_task(&archive, &dag_a, task, cfg);
        let b = run_task(&restored, &dag_b, task, cfg);
        assert_eq!(a.output, b.output, "{}", task.name());
    }
}

#[test]
fn non_default_sequence_lengths_agree() {
    let corpus = corpora().remove(2).1;
    let archive = compress_corpus(&corpus, CompressOptions::default());
    let dag = Dag::from_grammar(&archive.grammar);
    let files = archive.grammar.expand_files();
    for l in [1usize, 2, 3] {
        let cfg = TaskConfig { sequence_length: l };
        let params = GtadocParams {
            sequence_length: l,
            ..Default::default()
        };
        let mut engine = GtadocEngine::with_params(GpuSpec::tesla_v100(), params);
        for task in [Task::SequenceCount, Task::RankedInvertedIndex] {
            let (oracle_out, _) = uncompressed::cpu::run_cpu_uncompressed(&files, task, cfg);
            let cpu = run_task(&archive, &dag, task, cfg);
            let gpu = engine.run_archive(&archive, task);
            assert_eq!(cpu.output, oracle_out, "l={l} {}", task.name());
            assert_eq!(gpu.output, oracle_out, "l={l} {}", task.name());
        }
    }
}
