//! Results-cache property tests: random interleavings of `(task, cfg)`
//! request sequences against a shared, cache-enabled [`Engine`].  The
//! invariants under test:
//!
//! * cached answers are always byte-identical to a fresh compute (the
//!   sequential oracle);
//! * distinct configs never alias a cache key — a `sequence_length` change
//!   always reaches a different entry;
//! * the hit/miss counters reconcile with the request log: sequentially,
//!   `misses == distinct keys` and `hits == requests − distinct keys`;
//!   concurrently, `hits + misses == requests` and
//!   `misses >= distinct keys` (same-key races may compute twice, never
//!   serve a wrong answer).

use proptest::prelude::*;

use g_tadoc_repro::prelude::*;
use std::collections::HashSet;

fn cache_corpus() -> Vec<(String, String)> {
    let shared = "one two three four five six seven eight nine ten ".repeat(4);
    (0..10)
        .map(|i| (format!("doc{i}"), format!("{shared} tag{} {shared}", i % 3)))
        .collect()
}

/// Decodes a request id into a `(task, cfg)` pair: six tasks × sequence
/// lengths 1..=4 — 24 distinct cache keys.
fn decode(req: u8) -> (Task, TaskConfig) {
    let task = Task::ALL[(req as usize) % 6];
    let l = 1 + (req as usize / 6) % 4;
    (task, TaskConfig { sequence_length: l })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    // Sequential random request logs: every answer oracle-identical, and
    // the counters reconcile exactly with the log.
    #[test]
    fn random_request_log_reconciles_with_counters(
        reqs in proptest::collection::vec(0u8..24, 4..40),
    ) {
        let corpus = cache_corpus();
        let archive = compress_corpus(&corpus, CompressOptions::default());
        let dag = Dag::from_grammar(&archive.grammar);
        let engine = Engine::builder(&archive, &dag)
            .threads(2)
            .results_cache(true)
            .build()
            .expect("valid engine config");

        let mut seen: HashSet<u8> = HashSet::new();
        for (i, &req) in reqs.iter().enumerate() {
            let (task, cfg) = decode(req);
            let fresh = run_task(&archive, &dag, task, cfg);
            let exec = engine.run(task, cfg).expect("valid task config");
            prop_assert_eq!(
                &exec.output, &fresh.output,
                "request {} ({} l={}): cached answer diverged from fresh compute",
                i, task.name(), cfg.sequence_length
            );
            let stats = exec.timings.results_cache.expect("cache enabled");
            prop_assert_eq!(
                stats.hit,
                seen.contains(&req),
                "request {}: hit iff the key was requested before", i
            );
            seen.insert(req);
        }
        let (hits, misses) = engine.results_cache_counters().expect("cache enabled");
        prop_assert_eq!(misses, seen.len() as u64, "misses == distinct keys");
        prop_assert_eq!(
            hits + misses,
            reqs.len() as u64,
            "every request probes the cache exactly once"
        );
    }

    // Distinct configs never alias: interleaving two sequence lengths of
    // the same task always yields the two distinct oracle outputs, never a
    // stale entry from the other config.
    #[test]
    fn distinct_configs_never_alias_a_key(
        la in 1usize..=4,
        offset in 1usize..=3,
        order in proptest::collection::vec(0u8..2, 4..16),
    ) {
        let lb = (la + offset - 1) % 4 + 1; // distinct from la by construction
        let corpus = cache_corpus();
        let archive = compress_corpus(&corpus, CompressOptions::default());
        let dag = Dag::from_grammar(&archive.grammar);
        let engine = Engine::builder(&archive, &dag)
            .threads(2)
            .results_cache(true)
            .build()
            .expect("valid engine config");
        let cfg_a = TaskConfig { sequence_length: la };
        let cfg_b = TaskConfig { sequence_length: lb };
        let oracle_a = run_task(&archive, &dag, Task::SequenceCount, cfg_a);
        let oracle_b = run_task(&archive, &dag, Task::SequenceCount, cfg_b);

        for (i, &pick) in order.iter().enumerate() {
            let (cfg, oracle) = if pick == 0 {
                (cfg_a, &oracle_a)
            } else {
                (cfg_b, &oracle_b)
            };
            let exec = engine.run(Task::SequenceCount, cfg).expect("valid config");
            prop_assert_eq!(
                &exec.output, &oracle.output,
                "step {}: l={} must reach its own cache entry",
                i, cfg.sequence_length
            );
        }
        let (_, misses) = engine.results_cache_counters().expect("cache enabled");
        let distinct = order.iter().collect::<HashSet<_>>().len() as u64;
        prop_assert_eq!(misses, distinct, "one miss per distinct config");
    }

    // Concurrent random interleavings: client threads replay rotated
    // copies of the request log against one shared cache-enabled engine.
    // Answers stay oracle-identical and the counters reconcile as probes.
    #[test]
    fn concurrent_interleavings_stay_oracle_identical(
        reqs in proptest::collection::vec(0u8..24, 8..32),
    ) {
        let corpus = cache_corpus();
        let archive = compress_corpus(&corpus, CompressOptions::default());
        let dag = Dag::from_grammar(&archive.grammar);
        let engine = Engine::builder(&archive, &dag)
            .threads(2)
            .results_cache(true)
            .build()
            .expect("valid engine config");

        let distinct: HashSet<u8> = reqs.iter().copied().collect();
        let oracle: Vec<(u8, AnalyticsOutput)> = distinct
            .iter()
            .map(|&req| {
                let (task, cfg) = decode(req);
                (req, run_task(&archive, &dag, task, cfg).output)
            })
            .collect();
        let lookup = |req: u8| -> &AnalyticsOutput {
            &oracle.iter().find(|(r, _)| *r == req).expect("precomputed").1
        };

        let clients = 4usize;
        std::thread::scope(|s| {
            for c in 0..clients {
                let engine = &engine;
                let reqs = &reqs;
                let lookup = &lookup;
                s.spawn(move || {
                    // Each client replays the log rotated by its id, so the
                    // same keys collide across threads in different orders.
                    for i in 0..reqs.len() {
                        let req = reqs[(c + i) % reqs.len()];
                        let (task, cfg) = decode(req);
                        let exec = engine.run(task, cfg).expect("valid config");
                        assert_eq!(
                            &exec.output,
                            lookup(req),
                            "client {c}: concurrent cached answer diverged"
                        );
                    }
                });
            }
        });

        let (hits, misses) = engine.results_cache_counters().expect("cache enabled");
        prop_assert_eq!(
            hits + misses,
            (clients * reqs.len()) as u64,
            "every request probes the cache exactly once"
        );
        prop_assert!(
            misses >= distinct.len() as u64,
            "each distinct key misses at least once (races may add more)"
        );
    }
}
