//! Property-based tests (proptest) on the core invariants:
//!
//! * Sequitur compression is lossless for arbitrary token streams and
//!   arbitrary file splits;
//! * the archive binary format round-trips;
//! * the grammar respects rule-utility and acyclicity invariants;
//! * rule weights equal true expansion counts; file weights partition them;
//! * the GPU hash table behaves like a map; the pool-backed local tables
//!   behave like maps; the memory pool never overlaps regions;
//! * G-TADOC word count and sequence count agree with the oracle on random
//!   corpora.

use proptest::collection::vec;
use proptest::prelude::*;

use g_tadoc_repro::prelude::*;
use gtadoc::hashtable::{local_table, GpuHashTable};
use sequitur::compress::compress_token_files;
use sequitur::Dictionary;
use tadoc::timing::WorkStats;

/// Builds an archive from raw token streams (vocabulary = max token + 1).
fn archive_from_tokens(files: &[Vec<u32>]) -> TadocArchive {
    let vocab = files
        .iter()
        .flatten()
        .copied()
        .max()
        .map_or(1, |m| m as usize + 1);
    let mut dict = Dictionary::new();
    for i in 0..vocab {
        dict.intern(&format!("w{i}"));
    }
    let names = (0..files.len()).map(|i| format!("f{i}")).collect();
    let sizes = files.iter().map(|f| f.len() as u64 * 3).collect();
    compress_token_files(dict, files.to_vec(), names, sizes)
}

/// Strategy: between 1 and 4 files of tokens drawn from a small alphabet
/// (small alphabets maximise repetition and therefore grammar depth).
fn token_files() -> impl Strategy<Value = Vec<Vec<u32>>> {
    vec(vec(0u32..12, 0..120), 1..4)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn sequitur_roundtrip_is_lossless(files in token_files()) {
        let archive = archive_from_tokens(&files);
        prop_assert_eq!(archive.grammar.expand_files(), files);
    }

    #[test]
    fn grammar_invariants_hold(files in token_files()) {
        let archive = archive_from_tokens(&files);
        prop_assert!(archive.grammar.validate().is_ok());
        // Rule utility: every non-root rule is referenced at least twice.
        let counts = archive.grammar.rule_use_counts();
        for (r, &c) in counts.iter().enumerate().skip(1) {
            prop_assert!(c >= 2, "rule {} used {} times", r, c);
        }
    }

    #[test]
    fn archive_binary_format_roundtrips(files in token_files()) {
        let archive = archive_from_tokens(&files);
        let restored = TadocArchive::from_bytes(&archive.to_bytes()).unwrap();
        prop_assert_eq!(restored.grammar, archive.grammar);
        prop_assert_eq!(restored.files, archive.files);
    }

    #[test]
    fn rule_weights_equal_expansion_counts(files in token_files()) {
        let archive = archive_from_tokens(&files);
        let dag = Dag::from_grammar(&archive.grammar);
        let mut work = WorkStats::default();
        let weights = tadoc::weights::rule_weights(&dag, &mut work);
        let fw = tadoc::weights::file_weights(&archive.grammar, &dag, &mut work);
        for r in 1..dag.num_rules {
            // File weights partition the total weight.
            let total: u64 = fw[r].values().sum();
            prop_assert_eq!(total, weights[r]);
        }
    }

    #[test]
    fn gtadoc_word_count_matches_oracle(files in token_files()) {
        let archive = archive_from_tokens(&files);
        let expanded = archive.grammar.expand_files();
        let mut engine = GtadocEngine::new(GpuSpec::gtx_1080());
        let gpu = engine.run_archive(&archive, Task::WordCount);
        let expected = AnalyticsOutput::WordCount(tadoc::oracle::word_count(&expanded));
        prop_assert_eq!(gpu.output, expected);
    }

    #[test]
    fn gtadoc_sequence_count_matches_oracle(files in token_files(), l in 1usize..=3) {
        let archive = archive_from_tokens(&files);
        let expanded = archive.grammar.expand_files();
        let params = GtadocParams { sequence_length: l, ..Default::default() };
        let mut engine = GtadocEngine::with_params(GpuSpec::tesla_v100(), params);
        let gpu = engine.run_archive(&archive, Task::SequenceCount);
        let expected = AnalyticsOutput::SequenceCount(tadoc::oracle::sequence_count(&expanded, l));
        prop_assert_eq!(gpu.output, expected);
    }

    #[test]
    fn gpu_hash_table_behaves_like_a_map(ops in vec((0u64..64, 1u64..5), 0..300)) {
        let mut table = GpuHashTable::with_capacity(64, 2.0);
        let mut model = std::collections::HashMap::new();
        for (key, value) in ops {
            table.insert_add_host(key, value);
            *model.entry(key).or_insert(0u64) += value;
        }
        prop_assert_eq!(table.len(), model.len());
        for (k, v) in &model {
            prop_assert_eq!(table.get(*k), Some(*v));
        }
    }

    #[test]
    fn local_table_behaves_like_a_map(ops in vec((0u32..40, 1u32..4), 0..120)) {
        let mut region = vec![0u32; local_table::words_required(40) as usize];
        local_table::init(&mut region);
        let mut model = std::collections::HashMap::new();
        for (key, value) in ops {
            local_table::insert_add(&mut region, key, value);
            *model.entry(key).or_insert(0u32) += value;
        }
        prop_assert_eq!(local_table::len(&region) as usize, model.len());
        for (k, v) in &model {
            prop_assert_eq!(local_table::get(&region, *k), Some(*v));
        }
    }

    // Adversarial fill factors for the arena tables: `max_keys` sized
    // exactly for the number of distinct keys inserted (the tightest legal
    // bound, including 0), duplicate-heavy insert streams, and values past
    // 32 bits for `flat64`.  Iteration must agree with the model too — it
    // drives every merge scan in the fine-grained engine.
    #[test]
    fn flat64_behaves_like_a_map_at_tight_capacity(
        keys in vec(0u32..30, 0..30),
        reps in 1usize..6,
    ) {
        let distinct: std::collections::BTreeSet<u32> = keys.iter().copied().collect();
        let mut region = vec![0u32; arena::flat64::words_required(distinct.len() as u32) as usize];
        arena::flat64::init(&mut region);
        let mut model = std::collections::HashMap::new();
        let big = u32::MAX as u64; // force 64-bit accumulation
        for _ in 0..reps {
            for &key in &keys {
                arena::flat64::insert_add(&mut region, key, big + key as u64);
                *model.entry(key).or_insert(0u64) += big + key as u64;
            }
        }
        prop_assert_eq!(arena::flat64::len(&region) as usize, model.len());
        for (k, v) in &model {
            prop_assert_eq!(arena::flat64::get(&region, *k), Some(*v));
        }
        let mut pairs: Vec<(u32, u64)> = arena::flat64::iter(&region).collect();
        pairs.sort_unstable();
        let mut expected: Vec<(u32, u64)> = model.into_iter().collect();
        expected.sort_unstable();
        prop_assert_eq!(pairs, expected);
    }

    // Same adversarial shapes for the `u32 → u32` codec, driven straight to
    // 100% slot occupancy: every slot of the region must be usable when the
    // consumer's bound is exact.
    #[test]
    fn local_table_survives_exact_fill(extra in 0u32..40, seed in 0u32..1000) {
        let max_keys = extra; // includes 0: a zero-capacity table
        let mut region = vec![0u32; local_table::words_required(max_keys) as usize];
        local_table::init(&mut region);
        if max_keys == 0 {
            prop_assert_eq!(region.len(), 0);
            prop_assert_eq!(local_table::len(&region), 0);
            prop_assert_eq!(local_table::iter(&region).count(), 0);
            return Ok(());
        }
        // Fill to the full slot capacity (2× the nominal bound), not just
        // `max_keys` — the table must honour every allocated slot.
        let cap = region[0];
        for i in 0..cap {
            local_table::insert_add(&mut region, seed.wrapping_add(i.wrapping_mul(2654435761)), 1);
        }
        prop_assert_eq!(local_table::len(&region), cap);
        prop_assert_eq!(local_table::iter(&region).count() as u32, cap);
        for i in 0..cap {
            let key = seed.wrapping_add(i.wrapping_mul(2654435761));
            prop_assert_eq!(local_table::get(&region, key), Some(1));
        }
    }

    #[test]
    fn memory_pool_regions_never_overlap(reqs in vec(0u32..50, 0..60)) {
        let device = gpu_sim::Device::new(GpuSpec::gtx_1080());
        let pool = gtadoc::mempool::MemoryPool::allocate(&device, &reqs);
        prop_assert!(pool.regions_disjoint());
        prop_assert_eq!(pool.num_regions(), reqs.len());
        let total: u64 = reqs.iter().map(|&r| r as u64).sum();
        prop_assert_eq!(pool.total_words() as u64, total);
    }

    #[test]
    fn head_tail_buffers_match_true_expansions(files in token_files(), l in 1usize..=3) {
        let archive = archive_from_tokens(&files);
        let dag = Dag::from_grammar(&archive.grammar);
        let layout = gtadoc::layout::GpuLayout::build(&archive, &dag);
        let mut device = gpu_sim::Device::new(GpuSpec::gtx_1080());
        let ht = gtadoc::sequence::init_head_tail(&mut device, &layout, l);
        let keep = l - 1;
        for r in 1..layout.num_rules as u32 {
            let full = archive.grammar.expand_rule_words(r);
            let head: Vec<u32> = full.iter().copied().take(keep).collect();
            let tail: Vec<u32> = full[full.len().saturating_sub(keep)..].to_vec();
            prop_assert_eq!(&ht.head[r as usize], &head);
            prop_assert_eq!(&ht.tail[r as usize], &tail);
            if full.len() <= 2 * keep {
                prop_assert_eq!(ht.short_expansion[r as usize].as_deref(), Some(full.as_slice()));
            }
        }
    }
}

/// Strategy: up to 6 per-shard runs of `(key, value)` pairs (sorted by the
/// tests before merging — the shim strategy has no `prop_map`).  Includes
/// the adversarial cases: empty runs, single-key runs, duplicate keys both
/// within and across runs.
fn raw_runs() -> impl Strategy<Value = Vec<Vec<(u32, u64)>>> {
    vec(vec((0u32..30, 0u64..1000), 0..40), 0..6)
}

/// Stable-sorts each run by key: the shape the fine-grained finalize merges.
fn sort_runs(mut runs: Vec<Vec<(u32, u64)>>) -> Vec<Vec<(u32, u64)>> {
    for run in &mut runs {
        run.sort_by_key(|&(k, _)| k);
    }
    runs
}

/// The reference the k-way merges must equal: concatenate the runs in order
/// and stable-sort by key.
fn concat_stable_sort(runs: &[Vec<(u32, u64)>]) -> Vec<(u32, u64)> {
    let mut all: Vec<(u32, u64)> = runs.iter().flatten().copied().collect();
    all.sort_by_key(|&(k, _)| k);
    all
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    // The serial move-based k-way merge (the `Sequence` fallback path)
    // equals the concat + stable-sort reference on adversarial runs.
    #[test]
    fn kway_merge_equals_concat_stable_sort(runs in raw_runs()) {
        let runs = sort_runs(runs);
        let reference = concat_stable_sort(&runs);
        let merged = tadoc::fine_grained::merge::kway_merge_rows(runs);
        prop_assert_eq!(merged, reference);
    }

    // The parallel segmented merge agrees with the same reference at every
    // pool width; amplification repeats each pair in place (keys stay
    // sorted) so larger instances cross the parallel threshold and exercise
    // the splitter-partitioned path, not just the serial fallback.
    #[test]
    fn par_merge_equals_concat_stable_sort(runs in raw_runs(), wide in 0usize..2) {
        let amplify = if wide == 0 { 1u64 } else { 64 };
        let runs: Vec<Vec<(u32, u64)>> = sort_runs(runs)
            .into_iter()
            .map(|run| {
                run.into_iter()
                    .flat_map(|(k, v)| (0..amplify).map(move |i| (k, v + i)))
                    .collect()
            })
            .collect();
        let reference = concat_stable_sort(&runs);
        for threads in [1usize, 4, 8] {
            let pool = tadoc::fine_grained::exec::WorkerPool::new(threads);
            let mut work = WorkStats::default();
            let merged =
                tadoc::fine_grained::merge::par_merge_rows(runs.clone(), &pool, &mut work);
            prop_assert_eq!(&merged, &reference, "threads = {}", threads);
        }
    }
}

proptest! {
    // Fewer cases: each runs all six tasks at three pool widths.
    #![proptest_config(ProptestConfig::with_cases(10))]

    // Round-trip equality of the ordered columnar results against the
    // hash-built sequential oracle: every task's fine-grained output (built
    // by the k-way merge, no hash table) must equal the oracle's (built in
    // a hash map and converted once) at 1, 4, and 8 threads.
    #[test]
    fn ordered_results_equal_hash_built_oracle_across_tasks(files in token_files()) {
        let archive = archive_from_tokens(&files);
        let dag = Dag::from_grammar(&archive.grammar);
        let cfg = tadoc::TaskConfig::default();
        for task in Task::ALL {
            let reference = tadoc::run_task(&archive, &dag, task, cfg).output;
            for threads in [1usize, 4, 8] {
                let fine = tadoc::fine_grained::run_task_with_mode(
                    &archive,
                    &dag,
                    task,
                    cfg,
                    tadoc::fine_grained::ExecutionMode::FineGrained(
                        tadoc::fine_grained::FineGrainedConfig::with_threads(threads),
                    ),
                );
                prop_assert_eq!(
                    &fine.output,
                    &reference,
                    "task {} at {} threads",
                    task.name(),
                    threads
                );
            }
        }
    }
}
