//! Digest stability: `AnalyticsOutput::digest` is part of the serving
//! contract (`bench::serve` compares every answer against oracle digests,
//! and the results cache assumes a digest identifies an output).  These
//! pinned values were captured from the hash-map-backed representation;
//! the ordered columnar representation must reproduce them bit-for-bit,
//! so a digest change can never slip in silently with a representation
//! change.

use g_tadoc_repro::prelude::*;
use sequitur::Dag;

fn fixed_corpus() -> Vec<(String, String)> {
    vec![
        (
            "a.txt".to_string(),
            "the cat sat on the mat the cat sat on the hat".to_string(),
        ),
        (
            "b.txt".to_string(),
            "the dog sat on the mat and the dog ran".to_string(),
        ),
        (
            "c.txt".to_string(),
            "cats and dogs ran on the mat".to_string(),
        ),
    ]
}

#[test]
fn digests_are_pinned_for_a_fixed_corpus() {
    let archive = compress_corpus(&fixed_corpus(), CompressOptions::default());
    let dag = Dag::from_grammar(&archive.grammar);
    let cfg = TaskConfig::default();
    let mut got = Vec::new();
    for task in Task::ALL {
        let exec = run_task(&archive, &dag, task, cfg);
        got.push((task.name(), exec.output.digest()));
    }
    for (name, digest) in &got {
        println!("(\"{name}\", {digest:#018x}),");
    }
    assert_eq!(got.len(), PINNED.len(), "capture run — see stdout");
    for ((gn, gd), (pn, pd)) in got.iter().zip(PINNED) {
        assert_eq!(gn, pn);
        assert_eq!(gd, pd, "digest for {gn} changed");
    }
}

/// Captured from the pre-columnar (hash-map) representation; any edit to
/// these constants is a serving-protocol break and must be deliberate.
const PINNED: &[(&str, u64)] = &[
    ("wordCount", 0x778160443b9c967e),
    ("sort", 0x1e998616ac3e579a),
    ("invertedIndex", 0x1662253040798f69),
    ("termVector", 0x6358a37a785a8900),
    ("sequenceCount", 0xbfef9c509b390012),
    ("rankedInvertedIndex", 0xf26947889685c197),
];

/// The fine-grained engine must reproduce the same pinned digests at every
/// thread count — the digest is computed from the ordered representation,
/// so this also proves the parallel shard-run merge produces the same
/// ordered table the sequential oracle does.
#[test]
fn fine_grained_digests_match_the_pinned_values() {
    let archive = compress_corpus(&fixed_corpus(), CompressOptions::default());
    let dag = Dag::from_grammar(&archive.grammar);
    let cfg = TaskConfig::default();
    for threads in [1, 4, 8] {
        let fine = FineGrainedConfig::with_threads(threads);
        for (task, &(name, pinned)) in Task::ALL.into_iter().zip(PINNED) {
            assert_eq!(task.name(), name);
            let exec = run_task_with_mode(
                &archive,
                &dag,
                task,
                cfg,
                ExecutionMode::FineGrained(fine),
            );
            assert_eq!(
                exec.output.digest(),
                pinned,
                "{name} digest diverged at {threads} threads"
            );
        }
    }
}
