//! Stress tests for the persistent worker-pool executor.
//!
//! The pool dispatches every phase and DAG level as a barrier epoch over the
//! same parked threads, so the interesting adversarial shape is a grammar
//! with *many tiny levels* — the case that used to pay a thread-spawn per
//! level and that exercises the epoch handshake thousands of times per run.
//! Plus a file-skewed regression corpus for the CSR-based term-vector
//! kernel, whose workers own statically partitioned file ranges.

use g_tadoc_repro::prelude::*;
use tadoc::fine_grained::{run_task_fine_grained, FineGrainedConfig};

/// A corpus whose grammar is a deep chain: repeated doubling yields nested
/// rules (each level referencing the previous), i.e. many near-empty DAG
/// levels rather than a few wide ones.
fn deep_chain_corpus() -> Vec<(String, String)> {
    let mut s = "w0 w1".to_string();
    for _ in 0..9 {
        s = format!("{s} {s}");
    }
    vec![
        ("deep".to_string(), s.clone()),
        ("half".to_string(), s[..s.len() / 2].to_string()),
        ("tiny".to_string(), "w0 w1 w2".to_string()),
    ]
}

/// Many files with a heavily skewed size distribution: one dominant file
/// built from shared redundant content, a mid-sized tail, and a swarm of
/// tiny and empty files.  Exercises the cost-based file partitioning of the
/// term-vector kernel (the dominant file must not serialize a whole worker's
/// range behind it by being mis-sized).
fn file_skewed_corpus() -> Vec<(String, String)> {
    let shared = "alpha beta gamma delta epsilon zeta eta theta ".repeat(40);
    let mut corpus = vec![("whale".to_string(), format!("{shared} {shared} {shared}"))];
    for i in 0..8 {
        corpus.push((format!("mid{i}"), shared.clone()));
    }
    for i in 0..40 {
        corpus.push((format!("minnow{i}"), format!("alpha beta minnow{i}")));
    }
    corpus.push(("empty".to_string(), String::new()));
    corpus
}

#[test]
fn deep_grammar_has_many_tiny_levels() {
    let archive = compress_corpus(&deep_chain_corpus(), CompressOptions::default());
    let dag = Dag::from_grammar(&archive.grammar);
    assert!(
        dag.num_layers >= 8,
        "stress premise violated: doubling corpus only produced {} DAG layers",
        dag.num_layers
    );
}

#[test]
fn all_tasks_agree_across_thread_counts_on_many_tiny_levels() {
    let corpus = deep_chain_corpus();
    let archive = compress_corpus(&corpus, CompressOptions::default());
    let dag = Dag::from_grammar(&archive.grammar);
    let files = archive.grammar.expand_files();
    let cfg = TaskConfig::default();
    for task in Task::ALL {
        let (oracle, _) = uncompressed::cpu::run_cpu_uncompressed(&files, task, cfg);
        let sequential = run_task(&archive, &dag, task, cfg);
        assert_eq!(sequential.output, oracle, "sequential vs oracle on {}", task.name());
        for threads in [1usize, 4, 8] {
            let fine = run_task_fine_grained(
                &archive,
                &dag,
                task,
                cfg,
                FineGrainedConfig::with_threads(threads),
            );
            assert_eq!(
                fine.output,
                sequential.output,
                "task {} with {threads} threads diverges on the deep-chain grammar",
                task.name()
            );
        }
    }
}

#[test]
fn repeated_runs_reuse_fresh_pools_without_interference() {
    // Every run creates (and drops) its own pool; loop a task enough times
    // that leaked or wedged helper threads would show up as a hang or a
    // wrong result.
    let archive = compress_corpus(&deep_chain_corpus(), CompressOptions::default());
    let dag = Dag::from_grammar(&archive.grammar);
    let cfg = TaskConfig::default();
    let expected = run_task(&archive, &dag, Task::SequenceCount, cfg).output;
    for _ in 0..20 {
        let fine = run_task_fine_grained(
            &archive,
            &dag,
            Task::SequenceCount,
            cfg,
            FineGrainedConfig::with_threads(4),
        );
        assert_eq!(fine.output, expected);
    }
}

#[test]
fn term_vector_fine_matches_sequential_on_file_skew() {
    let corpus = file_skewed_corpus();
    let archive = compress_corpus(&corpus, CompressOptions::default());
    let dag = Dag::from_grammar(&archive.grammar);
    let cfg = TaskConfig::default();
    let (oracle, _) =
        uncompressed::cpu::run_cpu_uncompressed(&archive.grammar.expand_files(), Task::TermVector, cfg);
    let sequential = run_task(&archive, &dag, Task::TermVector, cfg);
    assert_eq!(sequential.output, oracle, "sequential vs oracle");
    for threads in [1usize, 2, 4, 8] {
        let fine = run_task_fine_grained(
            &archive,
            &dag,
            Task::TermVector,
            cfg,
            FineGrainedConfig::with_threads(threads),
        );
        assert_eq!(
            fine.output,
            sequential.output,
            "termVector with {threads} threads diverges on the file-skewed corpus"
        );
    }
}
