//! Concurrent serving integration tests: N client threads hammer **one
//! shared** [`Engine`] (`&self` queries) with all six tasks at once.  Every
//! answer must be byte-identical to the sequential oracle, the once-filled
//! analysis layer must fill **exactly once** no matter how many clients
//! race on first touch (observable through `Engine::analysis_fills`), and a
//! cold-start thundering herd — every client arriving before the first fill
//! — must neither wedge nor duplicate work.

use g_tadoc_repro::prelude::*;
use std::collections::HashMap;
use std::sync::Barrier;

fn serving_corpus() -> Vec<(String, String)> {
    let shared = "the quick brown fox jumps over the lazy dog while the cat watches ".repeat(5);
    (0..24)
        .map(|i| (format!("doc{i}"), format!("{shared} topic{} {shared}", i % 5)))
        .collect()
}

/// The serving mix: all six tasks under the default config, plus the
/// sequence-sensitive tasks at two extra lengths — the only per-query knob
/// that shapes a shared artifact, so the mix exercises the per-`l`
/// head/tail slots under contention too.
fn task_mix() -> Vec<(Task, TaskConfig)> {
    let mut mix: Vec<(Task, TaskConfig)> = Task::ALL
        .into_iter()
        .map(|t| (t, TaskConfig::default()))
        .collect();
    for l in [2usize, 4] {
        mix.push((Task::SequenceCount, TaskConfig { sequence_length: l }));
        mix.push((Task::RankedInvertedIndex, TaskConfig { sequence_length: l }));
    }
    mix
}

fn oracle_outputs(
    archive: &TadocArchive,
    dag: &Dag,
    mix: &[(Task, TaskConfig)],
) -> HashMap<(Task, TaskConfig), AnalyticsOutput> {
    mix.iter()
        .map(|&(task, cfg)| ((task, cfg), run_task(archive, dag, task, cfg).output))
        .collect()
}

/// 2/4/8 client threads on one shared engine, each running many iterations
/// of the full mix (offset by client id so different tasks overlap in
/// flight): every answer byte-identical to the sequential oracle.
#[test]
fn concurrent_clients_get_oracle_identical_answers() {
    let corpus = serving_corpus();
    let archive = compress_corpus(&corpus, CompressOptions::default());
    let dag = Dag::from_grammar(&archive.grammar);
    let mix = task_mix();
    let oracle = oracle_outputs(&archive, &dag, &mix);

    for clients in [2usize, 4, 8] {
        let engine = Engine::builder(&archive, &dag)
            .threads(4)
            .build()
            .expect("valid engine config");
        std::thread::scope(|s| {
            for c in 0..clients {
                let engine = &engine;
                let mix = &mix;
                let oracle = &oracle;
                s.spawn(move || {
                    for i in 0..3 * mix.len() {
                        let (task, cfg) = mix[(c + i) % mix.len()];
                        let exec = engine.run(task, cfg).expect("valid task config");
                        assert_eq!(
                            Some(&exec.output),
                            oracle.get(&(task, cfg)),
                            "client {c} iteration {i}: {} diverged from the oracle \
                             under {clients}-way concurrency",
                            task.name()
                        );
                    }
                });
            }
        });
    }
}

/// The analysis layer fills exactly once under concurrency: after a full
/// concurrent mix, the fill counter matches a fresh engine driven through
/// the identical mix sequentially — no artifact was computed twice, none
/// was skipped.
#[test]
fn analysis_layer_fills_exactly_once_under_concurrency() {
    let corpus = serving_corpus();
    let archive = compress_corpus(&corpus, CompressOptions::default());
    let dag = Dag::from_grammar(&archive.grammar);
    let mix = task_mix();

    let sequential = Engine::builder(&archive, &dag)
        .threads(4)
        .build()
        .expect("valid engine config");
    for &(task, cfg) in &mix {
        sequential.run(task, cfg).expect("valid task config");
    }
    let expected_fills = sequential.analysis_fills();
    assert!(expected_fills > 0, "the mix must fill shared artifacts");

    let concurrent = Engine::builder(&archive, &dag)
        .threads(4)
        .build()
        .expect("valid engine config");
    std::thread::scope(|s| {
        for c in 0..8usize {
            let engine = &concurrent;
            let mix = &mix;
            s.spawn(move || {
                for i in 0..2 * mix.len() {
                    let (task, cfg) = mix[(c + i) % mix.len()];
                    engine.run(task, cfg).expect("valid task config");
                }
            });
        }
    });
    assert_eq!(
        concurrent.analysis_fills(),
        expected_fills,
        "concurrent first-touch races must fill each artifact exactly once"
    );
}

/// Cold-start thundering herd: all clients arrive at a barrier *before*
/// anything is filled, then submit the same artifact-heavy task at the same
/// instant.  Exactly one fill set executes, everyone gets the oracle
/// answer.
#[test]
fn cold_start_thundering_herd_fills_once() {
    let corpus = serving_corpus();
    let archive = compress_corpus(&corpus, CompressOptions::default());
    let dag = Dag::from_grammar(&archive.grammar);
    let cfg = TaskConfig::default();
    let oracle = run_task(&archive, &dag, Task::SequenceCount, cfg);

    let fresh = Engine::builder(&archive, &dag)
        .threads(2)
        .build()
        .expect("valid engine config");
    fresh.run(Task::SequenceCount, cfg).expect("valid config");
    let expected_fills = fresh.analysis_fills();

    let clients = 8usize;
    let engine = Engine::builder(&archive, &dag)
        .threads(2)
        .build()
        .expect("valid engine config");
    assert_eq!(engine.analysis_fills(), 0, "nothing filled before the herd");
    let barrier = Barrier::new(clients);
    std::thread::scope(|s| {
        for c in 0..clients {
            let engine = &engine;
            let barrier = &barrier;
            let oracle = &oracle;
            s.spawn(move || {
                barrier.wait();
                let exec = engine
                    .run(Task::SequenceCount, cfg)
                    .expect("valid task config");
                assert_eq!(exec.output, oracle.output, "herd client {c}");
            });
        }
    });
    assert_eq!(
        engine.analysis_fills(),
        expected_fills,
        "the herd must fill each artifact exactly once, not once per client"
    );
}

/// The same concurrent mix with the results cache enabled: answers stay
/// oracle-identical and the hit/miss counters reconcile with the request
/// count (`hits + misses == total queries`).
#[test]
fn concurrent_serving_with_results_cache_stays_oracle_identical() {
    let corpus = serving_corpus();
    let archive = compress_corpus(&corpus, CompressOptions::default());
    let dag = Dag::from_grammar(&archive.grammar);
    let mix = task_mix();
    let oracle = oracle_outputs(&archive, &dag, &mix);

    let clients = 8usize;
    let rounds = 3usize;
    let engine = Engine::builder(&archive, &dag)
        .threads(4)
        .results_cache(true)
        .build()
        .expect("valid engine config");
    std::thread::scope(|s| {
        for c in 0..clients {
            let engine = &engine;
            let mix = &mix;
            let oracle = &oracle;
            s.spawn(move || {
                for i in 0..rounds * mix.len() {
                    let (task, cfg) = mix[(c + i) % mix.len()];
                    let exec = engine.run(task, cfg).expect("valid task config");
                    assert_eq!(
                        Some(&exec.output),
                        oracle.get(&(task, cfg)),
                        "client {c}: cached serving diverged on {}",
                        task.name()
                    );
                }
            });
        }
    });
    let (hits, misses) = engine
        .results_cache_counters()
        .expect("cache enabled at build time");
    assert_eq!(
        hits + misses,
        (clients * rounds * mix.len()) as u64,
        "every query probes the cache exactly once"
    );
    assert!(
        misses >= mix.len() as u64,
        "each distinct key misses at least once"
    );
    assert!(hits > 0, "a repeated mix must produce cache hits");
}
