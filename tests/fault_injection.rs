//! Fault-injection suite: compiled and run only with the `failpoints`
//! feature (`cargo test --features failpoints`), which arms the injection
//! sites across the execution stack (`worker-epoch`, `chunk-boundary`,
//! `arena-reserve`, `merge-fold` — see `ARCHITECTURE.md`, *Failure model &
//! recovery*).
//!
//! The contract under test: an injected fault at **any** site, under any
//! thread count, for every task, leaves the *same* `Engine` serving
//! byte-identical results to the sequential oracle — first via the degraded
//! (sequential-retry) answer of the faulted query itself, then via the
//! healed fine path on the query after.

#![cfg(feature = "failpoints")]

use g_tadoc_repro::prelude::*;
use std::sync::{Mutex, MutexGuard, OnceLock};
use std::time::Duration;
use tadoc::apps::run_task;
use tadoc::fine_grained::exec::{EpochOutcome, WorkerPool};
use tadoc::timing::Degradation;

/// The failpoint registry is process-global and tests arm/disarm it, so
/// they must not interleave.  (A test that panics poisons the mutex; later
/// tests just take the guard anyway — the registry itself is still valid.)
fn serial() -> MutexGuard<'static, ()> {
    static LOCK: OnceLock<Mutex<()>> = OnceLock::new();
    LOCK.get_or_init(|| Mutex::new(()))
        .lock()
        .unwrap_or_else(std::sync::PoisonError::into_inner)
}

/// Every site planted in the execution stack, in stack order.
const FAILPOINTS: [&str; 4] = [
    "worker-epoch",
    "chunk-boundary",
    "arena-reserve",
    "merge-fold",
];

fn corpus() -> Vec<(String, String)> {
    let shared = "the quick brown fox jumps over the lazy dog while the cat watches ".repeat(8);
    (0..12)
        .map(|i| (format!("doc{i}"), format!("{shared} topic{} {shared}", i % 5)))
        .collect()
}

/// A corpus big enough that a cold fine-grained query comfortably outlives
/// a microsecond-scale deadline (used by the limit tests).
fn large_corpus() -> Vec<(String, String)> {
    let page = "alpha beta gamma delta epsilon zeta eta theta iota kappa lambda mu ".repeat(60);
    (0..8)
        .map(|i| (format!("book{i}"), format!("{page} chapter{} {page}", i)))
        .collect()
}

#[test]
fn every_failpoint_leaves_the_engine_serving_oracle_identical_results() {
    let _guard = serial();
    failpoints::reset();
    let archive = compress_corpus(&corpus(), CompressOptions::default());
    let dag = Dag::from_grammar(&archive.grammar);
    for threads in [1usize, 4, 8] {
        for spec in TaskSpec::all() {
            let oracle = run_task(&archive, &dag, spec.task, spec.cfg);
            for site in FAILPOINTS {
                let label = format!("site={site} threads={threads} task={}", spec.task.name());
                let engine = Engine::builder(&archive, &dag)
                    .threads(threads)
                    .build()
                    .expect("valid archive");
                failpoints::enable_times(site, 1);
                // The faulted query must still *succeed* — degraded to the
                // sequential path, never surfaced as a panic or error.
                let faulted = engine
                    .run(spec.task, spec.cfg)
                    .unwrap_or_else(|e| panic!("{label}: query failed: {e}"));
                assert_eq!(faulted.output, oracle.output, "{label}: degraded output");
                if site == "worker-epoch" || site == "chunk-boundary" {
                    // These sites sit on every task's path, so one armed hit
                    // is guaranteed to fire and degrade the query.  The
                    // other two only fire for tasks whose path crosses them
                    // (termVector merges by scatter, and the CPU engine
                    // does not probe arena tables).
                    assert_eq!(
                        faulted.timings.degraded,
                        Some(Degradation::WorkerPanic),
                        "{label}: must have degraded"
                    );
                }
                failpoints::reset();
                // The *same* engine keeps serving on the (healed) fine path.
                let after = engine
                    .run(spec.task, spec.cfg)
                    .unwrap_or_else(|e| panic!("{label}: post-fault query failed: {e}"));
                assert_eq!(after.output, oracle.output, "{label}: post-fault output");
                assert!(
                    after.timings.degraded.is_none(),
                    "{label}: post-fault query must run the fine path"
                );
            }
        }
    }
}

#[test]
fn pool_heals_across_repeated_poison_cycles_with_monotonic_epochs() {
    let _guard = serial();
    failpoints::reset();
    let archive = compress_corpus(&corpus(), CompressOptions::default());
    let dag = Dag::from_grammar(&archive.grammar);
    let oracle = run_task(&archive, &dag, Task::WordCount, TaskConfig::default());
    let engine = Engine::builder(&archive, &dag)
        .threads(4)
        .build()
        .expect("valid archive");

    let clean = engine.run(Task::WordCount, TaskConfig::default()).unwrap();
    assert_eq!(clean.output, oracle.output);
    assert!(clean.timings.degraded.is_none());
    let mut last_epochs = engine.epochs();
    assert!(last_epochs > 0, "the clean run dispatched epochs");

    for round in 0..6 {
        // Poison: the first pool epoch of this query faults.
        failpoints::enable_times("worker-epoch", 1);
        let faulted = engine.run(Task::WordCount, TaskConfig::default()).unwrap();
        assert_eq!(faulted.output, oracle.output, "round {round}");
        assert_eq!(
            faulted.timings.degraded,
            Some(Degradation::WorkerPanic),
            "round {round}"
        );
        let healthy = engine
            .with_worker_pool(|pool| !pool.is_poisoned())
            .expect("fine mode owns a pool");
        assert!(healthy, "round {round}: pool must be healed");
        let epochs = engine.epochs();
        assert!(
            epochs > last_epochs,
            "round {round}: epochs must keep increasing across heals \
             ({epochs} <= {last_epochs})"
        );
        last_epochs = epochs;

        // Heal: the next query runs the fine path on the rebuilt pool.
        let healed = engine.run(Task::WordCount, TaskConfig::default()).unwrap();
        assert_eq!(healed.output, oracle.output, "round {round}");
        assert!(healed.timings.degraded.is_none(), "round {round}");
        let epochs = engine.epochs();
        assert!(epochs > last_epochs, "round {round}: healed run dispatched epochs");
        last_epochs = epochs;
    }
}

#[test]
fn cancellation_mid_query_returns_typed_error_and_keeps_the_session_healthy() {
    let _guard = serial();
    failpoints::reset();
    let archive = compress_corpus(&corpus(), CompressOptions::default());
    let dag = Dag::from_grammar(&archive.grammar);
    let oracle = run_task(&archive, &dag, Task::WordCount, TaskConfig::default());
    let engine = Engine::builder(&archive, &dag)
        .threads(4)
        .build()
        .expect("valid archive");

    // Deterministic in-flight cancellation: the observation hook cancels the
    // token the moment execution crosses the first chunk boundary, so the
    // very checkpoint that ran the hook sees the flag and aborts — no timer
    // racing the query.
    let token = CancelToken::new();
    let hook_token = token.clone();
    failpoints::observe("chunk-boundary", move || hook_token.cancel());
    let opts = QueryOptions::new().cancel_token(token);
    let err = engine
        .run_with(Task::WordCount, TaskConfig::default(), &opts)
        .expect_err("hook cancels during the query");
    assert_eq!(err, EngineError::Cancelled);
    failpoints::reset();

    // Clean abort: nothing poisoned, the next unrestricted query is served
    // by the fine path and matches the oracle.
    assert!(engine.with_worker_pool(|pool| !pool.is_poisoned()).unwrap());
    let after = engine.run(Task::WordCount, TaskConfig::default()).unwrap();
    assert_eq!(after.output, oracle.output);
    assert!(after.timings.degraded.is_none());
}

#[test]
fn deadline_mid_query_returns_typed_error_in_bounded_time() {
    let _guard = serial();
    failpoints::reset();
    let archive = compress_corpus(&large_corpus(), CompressOptions::default());
    let dag = Dag::from_grammar(&archive.grammar);
    let engine = Engine::builder(&archive, &dag)
        .threads(4)
        .build()
        .expect("valid archive");

    // Deterministic in-flight expiry: the hook stalls the first chunk
    // boundary past the deadline, so that same checkpoint trips it.
    failpoints::observe("chunk-boundary", || {
        std::thread::sleep(Duration::from_millis(5));
    });
    let opts = QueryOptions::new().deadline(Duration::from_millis(1));
    let err = engine
        .run_with(Task::SequenceCount, TaskConfig { sequence_length: 3 }, &opts)
        .expect_err("deadline expires during the query");
    assert_eq!(err, EngineError::DeadlineExceeded);
    failpoints::reset();

    // The session survives: the identical query, unrestricted, completes
    // and matches the oracle.
    assert!(engine.with_worker_pool(|pool| !pool.is_poisoned()).unwrap());
    let cfg = TaskConfig { sequence_length: 3 };
    let oracle = run_task(&archive, &dag, Task::SequenceCount, cfg);
    let after = engine.run(Task::SequenceCount, cfg).unwrap();
    assert_eq!(after.output, oracle.output);
    assert!(after.timings.degraded.is_none());
}

#[test]
fn arena_reserve_failpoint_surfaces_as_typed_capacity_errors() {
    let _guard = serial();
    failpoints::reset();

    // The try_* API returns the injected fault as a typed Result.
    let mut region = vec![0u32; arena::local_table::try_words_required(8).unwrap() as usize];
    arena::local_table::init(&mut region);
    failpoints::enable_times("arena-reserve", 1);
    let err = arena::local_table::try_insert_add(&mut region, 42, 1)
        .expect_err("armed site injects a capacity error");
    assert!(matches!(err, arena::CapacityError::TableOverflow { key: 42, .. }));
    // Disarmed, the same insert succeeds.
    assert!(arena::local_table::try_insert_add(&mut region, 42, 1).is_ok());

    // The panicking wrapper (gpu-sim's interface) carries the same typed
    // payload through the unwind — exactly what the engine's classifier
    // downcasts when a worker epoch dies on a capacity fault.
    failpoints::enable_times("arena-reserve", 1);
    let payload = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
        arena::local_table::insert_add(&mut region, 7, 1);
    }))
    .expect_err("armed site panics through the wrapper");
    let cap = payload
        .downcast_ref::<arena::CapacityError>()
        .expect("payload is the typed capacity error");
    assert!(matches!(cap, arena::CapacityError::TableOverflow { key: 7, .. }));
    failpoints::reset();
}

#[test]
fn capacity_panic_payloads_classify_through_the_pool_as_faults() {
    let _guard = serial();
    failpoints::reset();
    // A worker epoch dying on an arena capacity fault must surface as a
    // Faulted outcome whose payload downcasts to the typed error — the
    // transport the engine's degrade ladder relies on to distinguish
    // ArenaCapacity from a generic WorkerPanicked.
    let pool = WorkerPool::new(4);
    let outcome = pool.run_epoch(&|w: usize| {
        if w == 1 {
            std::panic::panic_any(arena::CapacityError::ZeroCapacity { key: 9 });
        }
    });
    match outcome {
        EpochOutcome::Faulted(payload) => {
            let cap = payload
                .downcast_ref::<arena::CapacityError>()
                .expect("typed payload survives the barrier");
            assert_eq!(*cap, arena::CapacityError::ZeroCapacity { key: 9 });
        }
        EpochOutcome::Completed => panic!("epoch must fault"),
    }
    assert!(pool.is_poisoned(), "a capacity fault poisons the pool");
}

/// A fault injected into **one** query of a concurrent mix must stay
/// per-query: at every failpoint, all answers from all client threads
/// remain oracle-identical, at most the single query that absorbed the
/// armed hit degrades, and the shared engine keeps serving clean fine-path
/// answers afterwards.
#[test]
fn concurrent_fault_isolation_at_every_failpoint() {
    use std::sync::atomic::{AtomicUsize, Ordering};
    let _guard = serial();
    failpoints::reset();
    let archive = compress_corpus(&corpus(), CompressOptions::default());
    let dag = Dag::from_grammar(&archive.grammar);
    let mix: Vec<(Task, TaskConfig)> = Task::ALL
        .into_iter()
        .map(|t| (t, TaskConfig::default()))
        .collect();
    let oracle: Vec<AnalyticsOutput> = mix
        .iter()
        .map(|&(task, cfg)| run_task(&archive, &dag, task, cfg).output)
        .collect();

    for site in FAILPOINTS {
        let engine = Engine::builder(&archive, &dag)
            .threads(4)
            .build()
            .expect("valid archive");
        failpoints::enable_times(site, 1);
        let degraded = AtomicUsize::new(0);
        std::thread::scope(|s| {
            for c in 0..4usize {
                let engine = &engine;
                let mix = &mix;
                let oracle = &oracle;
                let degraded = &degraded;
                s.spawn(move || {
                    for i in 0..2 * mix.len() {
                        let k = (c + i) % mix.len();
                        let (task, cfg) = mix[k];
                        let exec = engine.run(task, cfg).unwrap_or_else(|e| {
                            panic!("site={site} client {c}: query failed: {e}")
                        });
                        assert_eq!(
                            exec.output,
                            oracle[k],
                            "site={site} client {c}: a fault in one query \
                             poisoned another's answer"
                        );
                        if exec.timings.degraded.is_some() {
                            degraded.fetch_add(1, Ordering::Relaxed);
                        }
                    }
                });
            }
        });
        failpoints::reset();
        assert!(
            degraded.load(Ordering::Relaxed) <= 1,
            "site={site}: one armed hit may degrade at most the query that \
             absorbed it"
        );
        // The same engine keeps serving clean fine-path answers.
        let after = engine
            .run(Task::WordCount, TaskConfig::default())
            .expect("post-round query");
        assert_eq!(after.output, oracle[0], "site={site}: post-round output");
        assert!(
            after.timings.degraded.is_none(),
            "site={site}: post-round query must run the fine path"
        );
    }
}

/// Cancelling one concurrent query must not cancel, degrade, or corrupt
/// the queries of other client threads — the cancel token travels with
/// exactly one query's control.
#[test]
fn cancellation_in_one_concurrent_query_leaves_others_untouched() {
    let _guard = serial();
    failpoints::reset();
    let archive = compress_corpus(&corpus(), CompressOptions::default());
    let dag = Dag::from_grammar(&archive.grammar);
    let cfg = TaskConfig::default();
    let oracle = run_task(&archive, &dag, Task::WordCount, cfg);
    let engine = Engine::builder(&archive, &dag)
        .threads(4)
        .build()
        .expect("valid archive");

    // The observation hook cancels the victim's token the moment *any*
    // execution crosses a chunk boundary; only the victim carries the
    // token, so only the victim aborts.
    let token = CancelToken::new();
    let hook_token = token.clone();
    failpoints::observe("chunk-boundary", move || hook_token.cancel());
    let victim_result = std::thread::scope(|s| {
        let victim = s.spawn(|| {
            let opts = QueryOptions::new().cancel_token(token);
            engine.run_with(Task::WordCount, cfg, &opts)
        });
        for c in 0..3usize {
            let engine = &engine;
            let oracle = &oracle;
            s.spawn(move || {
                for i in 0..8 {
                    let exec = engine.run(Task::WordCount, cfg).unwrap_or_else(|e| {
                        panic!("bystander {c} iteration {i} failed: {e}")
                    });
                    assert_eq!(
                        exec.output, oracle.output,
                        "bystander {c} iteration {i}: output corrupted"
                    );
                    assert!(
                        exec.timings.degraded.is_none(),
                        "bystander {c} iteration {i}: must not degrade"
                    );
                }
            });
        }
        victim.join().expect("victim thread must not panic")
    });
    failpoints::reset();
    assert_eq!(
        victim_result.expect_err("the victim's token is always cancelled"),
        EngineError::Cancelled,
        "the victim aborts with the typed cancellation error"
    );

    // The session survives: an unrestricted query serves the fine path.
    let after = engine.run(Task::WordCount, cfg).expect("post-round query");
    assert_eq!(after.output, oracle.output);
    assert!(after.timings.degraded.is_none());
}
