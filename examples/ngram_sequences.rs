//! Sequence-sensitive analytics: counts 3-word sequences (the paper's
//! sequence count task) and builds a ranked inverted index of phrases on the
//! DBLP-like dataset E, exercising the head/tail sequence support that lets
//! G-TADOC avoid re-scanning repeated passages.
//!
//! ```text
//! cargo run --release --example ngram_sequences
//! ```

use g_tadoc_repro::prelude::*;

fn main() {
    println!("generating the DBLP-like dataset E (one large structured file) ...");
    let corpus = DatasetPreset::new(DatasetId::E).generate_scaled(0.1);
    let archive = corpus.compress();
    println!(
        "  {} tokens compressed into {} grammar elements ({:.1}x reuse)\n",
        corpus.total_tokens(),
        archive.grammar.total_elements(),
        corpus.total_tokens() as f64 / archive.grammar.total_elements() as f64
    );

    let params = GtadocParams {
        sequence_length: 3,
        ..Default::default()
    };
    let mut engine = GtadocEngine::with_params(GpuSpec::tesla_v100(), params);

    // Sequence count: most frequent trigrams in the corpus.
    let sc = engine.run_archive(&archive, Task::SequenceCount);
    if let AnalyticsOutput::SequenceCount(result) = &sc.output {
        println!(
            "sequence count found {} distinct trigrams in {:.3} ms of modelled GPU time",
            result.distinct_sequences(),
            sc.total_seconds() * 1e3
        );
        let mut top: Vec<(&[u32], u64)> = result.iter().collect();
        top.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(b.0)));
        println!("most frequent trigrams:");
        for (seq, count) in top.into_iter().take(8) {
            let words: Vec<&str> = seq.iter().map(|&w| archive.dictionary.word(w)).collect();
            println!("  {:<40} {count}", words.join(" "));
        }
    }

    // Ranked inverted index: which files contain a given phrase, ranked by
    // in-file frequency (on a multi-file corpus).
    println!("\nbuilding a phrase index over the Wikipedia-like dataset B ...");
    let corpus_b = DatasetPreset::new(DatasetId::B).generate_scaled(0.1);
    let archive_b = corpus_b.compress();
    let rii = engine.run_archive(&archive_b, Task::RankedInvertedIndex);
    if let AnalyticsOutput::RankedInvertedIndex(result) = &rii.output {
        println!(
            "indexed {} distinct trigram phrases in {:.3} ms of modelled GPU time",
            result.distinct_sequences(),
            rii.total_seconds() * 1e3
        );
        // Look up the most widely shared phrase.
        let best = result
            .iter()
            .max_by_key(|(_, files)| files.len())
            .expect("non-empty index");
        let words: Vec<&str> = best.0.iter().map(|&w| archive_b.dictionary.word(w)).collect();
        println!("phrase appearing in the most files: \"{}\"", words.join(" "));
        for (file, count) in best.1.iter().take(4) {
            println!(
                "  {:<24} {} occurrences",
                corpus_b.file_names[*file as usize], count
            );
        }
    }

    // The CPU baseline agrees (verification).
    let dag = Dag::from_grammar(&archive_b.grammar);
    let cpu = run_task(
        &archive_b,
        &dag,
        Task::RankedInvertedIndex,
        TaskConfig::default(),
    );
    assert_eq!(cpu.output, rii.output);
    println!("\nCPU TADOC baseline produces identical results ✔");
}
