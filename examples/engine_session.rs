//! Long-lived `Engine` session: the serving pattern the session API exists
//! for.  One compressed archive is queried many times — six tasks, twice
//! each — on a single engine that keeps its worker pool parked and its
//! analysis layer (DAG levels, rule/file weights, head/tail buffers, chunk
//! decompositions, the term-vector CSR) cached between queries.
//!
//! ```text
//! cargo run --release --example engine_session
//! ```

use g_tadoc_repro::prelude::*;
use tadoc::fine_grained::TaskSpec;

fn main() {
    println!("generating the NSFRAA-like dataset A (many small files) ...");
    let corpus = DatasetPreset::new(DatasetId::A).generate_scaled(0.3);
    let archive = corpus.compress();
    let dag = Dag::from_grammar(&archive.grammar);
    println!(
        "  {} files, {} tokens, {} rules\n",
        corpus.files.len(),
        corpus.total_tokens(),
        archive.grammar.num_rules()
    );

    // The builder validates instead of clamping: nonsense knobs are typed
    // errors at build time, not silent single-threaded sessions.
    match Engine::builder(&archive, &dag).threads(0).build() {
        Err(e) => println!("builder rejects bad configuration: {e}"),
        Ok(_) => unreachable!("zero threads must not build"),
    }

    let engine = Engine::builder(&archive, &dag)
        .threads(4)
        .build()
        .expect("valid engine configuration");
    println!(
        "built a {} engine session (pool parked, cache empty)\n",
        engine.mode().name()
    );

    // Batched queries: the first pass fills the cache (each task computes
    // only what no earlier task already cached), the second pass is served
    // entirely warm.
    let specs = TaskSpec::all();
    println!("== pass 1: cold session (cache filling) ==");
    let cold = engine.run_all(&specs).expect("valid batch");
    for (spec, exec) in specs.iter().zip(&cold) {
        println!(
            "{:<22} init {:>9.1} µs (shared {:>9.1} µs)  traversal {:>9.1} µs",
            spec.task.name(),
            exec.timings.init.as_secs_f64() * 1e6,
            exec.timings.shared_init.as_secs_f64() * 1e6,
            exec.timings.traversal.as_secs_f64() * 1e6,
        );
    }

    println!("\n== pass 2: warm session (everything cached) ==");
    let warm = engine.run_all(&specs).expect("valid batch");
    for ((spec, cold_exec), warm_exec) in specs.iter().zip(&cold).zip(&warm) {
        assert_eq!(
            cold_exec.output, warm_exec.output,
            "warm output must be byte-identical"
        );
        assert!(warm_exec.timings.warm, "second pass must be warm");
        let cold_init = cold_exec.timings.init.as_secs_f64() * 1e6;
        let warm_init = warm_exec.timings.init.as_secs_f64() * 1e6;
        println!(
            "{:<22} init {:>9.1} µs -> {:>7.2} µs  ({:>6.0}x less init)",
            spec.task.name(),
            cold_init,
            warm_init,
            if warm_init > 0.0 { cold_init / warm_init } else { f64::INFINITY },
        );
    }

    println!(
        "\npool dispatched {} barrier epochs over the whole session — one \
         thread spawn per worker, ever",
        engine.epochs()
    );

    // The one-shot wrappers remain as the compatibility surface and agree
    // byte-for-byte with the session.
    let via_wrapper = run_task_with_mode(
        &archive,
        &dag,
        Task::WordCount,
        TaskConfig::default(),
        ExecutionMode::FineGrained(FineGrainedConfig::with_threads(4)),
    );
    assert_eq!(via_wrapper.output, cold[0].output);
    println!("one-shot wrapper output matches the session output");
}
