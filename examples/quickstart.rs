//! Quickstart: compress a tiny corpus and run every analytics task on the
//! simulated GPU, cross-checking against the CPU TADOC baseline.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use g_tadoc_repro::prelude::*;

fn main() {
    // The corpus of Figure 1 in the paper: two files sharing repeated content.
    let corpus = vec![
        (
            "fileA.txt".to_string(),
            "w1 w2 w3 w1 w2 w4 w1 w2 w3 w1 w2 w4".to_string(),
        ),
        ("fileB.txt".to_string(), "w1 w2 w1".to_string()),
    ];

    // Compress with TADOC (dictionary conversion + Sequitur grammar).
    let archive = compress_corpus(&corpus, CompressOptions::default());
    let stats = ArchiveStats::compute(&archive);
    println!("== compressed archive ==");
    println!("{stats}\n");

    // Show the grammar, as in Figure 1 (d).
    println!("== grammar ==");
    for (i, rule) in archive.grammar.rules.iter().enumerate() {
        let body: Vec<String> = rule.iter().map(|s| s.to_string()).collect();
        println!("R{i}: {}", body.join(" "));
    }
    println!();

    // Run all six tasks on a simulated Tesla V100 and cross-check against the
    // CPU baseline.
    let dag = Dag::from_grammar(&archive.grammar);
    let mut engine = GtadocEngine::new(GpuSpec::tesla_v100());
    println!("== analytics directly on the compressed data ==");
    for task in Task::ALL {
        let gpu = engine.run_archive(&archive, task);
        let cpu = run_task(&archive, &dag, task, TaskConfig::default());
        assert_eq!(gpu.output, cpu.output, "GPU and CPU must agree");
        println!(
            "{:<22} strategy={:<10} modelled GPU time = {:>9.3} µs (init {:.3} µs + traversal {:.3} µs)",
            task.name(),
            gpu.strategy.to_string(),
            gpu.total_seconds() * 1e6,
            gpu.init_seconds * 1e6,
            gpu.traversal_seconds * 1e6,
        );
    }

    // Print the word count result, which matches Figure 2 of the paper.
    let wc = engine.run_archive(&archive, Task::WordCount);
    if let AnalyticsOutput::WordCount(result) = &wc.output {
        println!("\n== word count (Figure 2) ==");
        let mut rows: Vec<(String, u64)> = result
            .iter()
            .map(|(w, c)| (archive.dictionary.word(w).to_string(), c))
            .collect();
        rows.sort();
        for (word, count) in rows {
            println!("<{word}, {count}>");
        }
    }
}
