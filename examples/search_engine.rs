//! A tiny search engine over compressed documents: builds an inverted index
//! and per-file term vectors directly on the compressed corpus (never
//! decompressing it), then answers keyword queries ranked by term frequency.
//!
//! This is the kind of downstream application the paper motivates: the
//! NSFRAA-like dataset A (thousands of small abstracts) indexed on the GPU.
//!
//! ```text
//! cargo run --release --example search_engine
//! ```

use g_tadoc_repro::prelude::*;

fn main() {
    println!("generating the NSFRAA-like dataset A (many small files) ...");
    let corpus = DatasetPreset::new(DatasetId::A).generate_scaled(0.15);
    let archive = corpus.compress();
    println!(
        "  {} files, {} tokens, {} rules\n",
        corpus.files.len(),
        corpus.total_tokens(),
        archive.grammar.num_rules()
    );

    // Build the index structures on the simulated GPU, directly on the
    // compressed data.
    let mut engine = GtadocEngine::new(GpuSpec::rtx_2080_ti());
    let index_exec = engine.run_archive(&archive, Task::InvertedIndex);
    let vectors_exec = engine.run_archive(&archive, Task::TermVector);
    let index = match &index_exec.output {
        AnalyticsOutput::InvertedIndex(idx) => idx.clone(),
        _ => unreachable!(),
    };
    let vectors = match &vectors_exec.output {
        AnalyticsOutput::TermVector(tv) => tv.clone(),
        _ => unreachable!(),
    };
    println!(
        "built inverted index ({} words, {} postings, strategy {}) and term vectors in {:.3} ms of modelled GPU time\n",
        index.distinct_words(),
        index.total_postings(),
        index_exec.strategy,
        (index_exec.total_seconds() + vectors_exec.total_seconds()) * 1e3
    );

    // Answer a few conjunctive queries: files containing every query word,
    // ranked by the sum of term frequencies.
    let queries = [
        vec!["word000000", "word000001"],
        vec!["word000002", "word000005", "word000007"],
        vec!["word000042"],
    ];
    for query in &queries {
        println!("query: {:?}", query);
        let ids: Vec<_> = query
            .iter()
            .filter_map(|w| archive.dictionary.get(w))
            .collect();
        if ids.len() != query.len() {
            println!("  (a query word is not in the corpus)\n");
            continue;
        }
        // Intersect posting lists.
        let mut candidates: Vec<u32> = index.files_for(ids[0]).to_vec();
        for &w in &ids[1..] {
            let postings = index.files_for(w);
            candidates.retain(|f| postings.binary_search(f).is_ok());
        }
        // Rank by summed term frequency from the term vectors.
        let mut ranked: Vec<(u32, u64)> = candidates
            .into_iter()
            .map(|f| (f, ids.iter().map(|&w| vectors.frequency(f, w)).sum()))
            .collect();
        ranked.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));
        for (file, score) in ranked.iter().take(5) {
            println!(
                "  {:<24} score {}",
                corpus.file_names[*file as usize], score
            );
        }
        println!("  ({} matching files)\n", ranked.len());
    }
}
