//! Wikipedia-style word count: generates the dataset-B shape (four large web
//! documents with long shared passages), compresses it once, and compares
//! three ways of answering "what are the most frequent words?":
//!
//! 1. the uncompressed CPU oracle,
//! 2. CPU TADOC (analytics directly on compression),
//! 3. G-TADOC on a simulated GPU.
//!
//! ```text
//! cargo run --release --example wikipedia_wordcount
//! ```

use g_tadoc_repro::prelude::*;
use std::time::Instant;

fn main() {
    let scale = 0.2;
    println!("generating the Wikipedia-like dataset B at scale {scale} ...");
    let corpus = DatasetPreset::new(DatasetId::B).generate_scaled(scale);
    println!(
        "  {} files, {} tokens, vocabulary {}",
        corpus.files.len(),
        corpus.total_tokens(),
        corpus.dictionary.len()
    );

    let t = Instant::now();
    let archive = corpus.compress();
    println!(
        "compressed in {:.2?}: {} rules, {} elements ({:.1}x token reduction)\n",
        t.elapsed(),
        archive.grammar.num_rules(),
        archive.grammar.total_elements(),
        corpus.total_tokens() as f64 / archive.grammar.total_elements() as f64
    );

    // 1. Uncompressed oracle.
    let t = Instant::now();
    let oracle = tadoc::oracle::sort(&corpus.files);
    let oracle_time = t.elapsed();

    // 2. CPU TADOC.
    let dag = Dag::from_grammar(&archive.grammar);
    let t = Instant::now();
    let cpu = run_task(&archive, &dag, Task::Sort, TaskConfig::default());
    let cpu_time = t.elapsed();

    // 3. G-TADOC on the simulated GPU.
    let mut engine = GtadocEngine::new(GpuSpec::tesla_v100());
    let t = Instant::now();
    let gpu = engine.run_archive(&archive, Task::Sort);
    let gpu_wall = t.elapsed();

    let cpu_ranked = match &cpu.output {
        AnalyticsOutput::Sort(s) => s.clone(),
        _ => unreachable!(),
    };
    assert_eq!(cpu_ranked, oracle, "TADOC must agree with the oracle");
    assert_eq!(gpu.output, cpu.output, "G-TADOC must agree with TADOC");

    println!("top 10 words (all three implementations agree):");
    for (word, count) in oracle.top_k(10) {
        println!("  {:<12} {count}", corpus.dictionary.word(*word));
    }

    println!("\nwall-clock on this machine:");
    println!("  uncompressed oracle : {oracle_time:.2?}");
    println!("  CPU TADOC           : {cpu_time:.2?}");
    println!("  G-TADOC (simulated) : {gpu_wall:.2?} (host wall-clock of the simulation)");
    println!(
        "\nmodelled GPU time on a Tesla V100: {:.3} ms (init {:.3} ms + traversal {:.3} ms), {} kernel launches",
        gpu.total_seconds() * 1e3,
        gpu.init_seconds * 1e3,
        gpu.traversal_seconds * 1e3,
        gpu.kernel_launches
    );
}
